#include "ml/cross_validation.h"

#include <algorithm>
#include <future>
#include <numeric>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/metrics.h"
#include "obs/metrics.h"

namespace cloudsurv::ml {

namespace {

// Shuffled row indices grouped by class label.
std::vector<std::vector<size_t>> ShuffledClassBuckets(const Dataset& data,
                                                      Rng& rng,
                                                      bool stratified) {
  std::vector<std::vector<size_t>> buckets;
  if (stratified) {
    buckets.resize(static_cast<size_t>(data.num_classes()));
    for (size_t i = 0; i < data.num_rows(); ++i) {
      buckets[static_cast<size_t>(data.label(i))].push_back(i);
    }
  } else {
    buckets.resize(1);
    buckets[0].resize(data.num_rows());
    std::iota(buckets[0].begin(), buckets[0].end(), 0);
  }
  for (auto& b : buckets) {
    std::shuffle(b.begin(), b.end(), rng.engine());
  }
  return buckets;
}

}  // namespace

Result<TrainTestIndices> TrainTestSplit(const Dataset& data,
                                        double test_fraction, uint64_t seed,
                                        bool stratified) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot split empty dataset");
  }
  if (!(test_fraction > 0.0 && test_fraction < 1.0)) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  Rng rng(seed);
  TrainTestIndices out;
  for (auto& bucket : ShuffledClassBuckets(data, rng, stratified)) {
    const size_t n_test = static_cast<size_t>(
        static_cast<double>(bucket.size()) * test_fraction + 0.5);
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (i < n_test) {
        out.test.push_back(bucket[i]);
      } else {
        out.train.push_back(bucket[i]);
      }
    }
  }
  if (out.train.empty() || out.test.empty()) {
    return Status::InvalidArgument(
        "split produced an empty train or test part");
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

Result<std::vector<Fold>> KFoldSplit(const Dataset& data, int k,
                                     uint64_t seed, bool stratified) {
  if (k < 2) {
    return Status::InvalidArgument("k-fold requires k >= 2");
  }
  if (data.num_rows() < static_cast<size_t>(k)) {
    return Status::InvalidArgument("fewer rows than folds");
  }
  Rng rng(seed);
  std::vector<std::vector<size_t>> fold_members(static_cast<size_t>(k));
  size_t cursor = 0;
  for (auto& bucket : ShuffledClassBuckets(data, rng, stratified)) {
    for (size_t i = 0; i < bucket.size(); ++i) {
      fold_members[cursor % static_cast<size_t>(k)].push_back(bucket[i]);
      ++cursor;
    }
  }
  std::vector<Fold> folds(static_cast<size_t>(k));
  for (size_t f = 0; f < folds.size(); ++f) {
    folds[f].validation = fold_members[f];
    std::sort(folds[f].validation.begin(), folds[f].validation.end());
    for (size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      folds[f].train.insert(folds[f].train.end(), fold_members[g].begin(),
                            fold_members[g].end());
    }
    std::sort(folds[f].train.begin(), folds[f].train.end());
    if (folds[f].train.empty() || folds[f].validation.empty()) {
      return Status::InvalidArgument("k-fold produced an empty fold");
    }
  }
  return folds;
}

namespace {

// Duration of one (grid-point × fold) train+evaluate item.
obs::Histogram* CvItemHistogram() {
  static obs::Histogram* const cv_item_us =
      obs::Registry::Default().GetHistogram(
          "cloudsurv_ml_cv_item_us",
          "One (grid point x fold) train + validate item");
  return cv_item_us;
}

// Summed item time of one tuning point (CPU time, not wall clock —
// items of a point run concurrently under num_threads > 1).
obs::Histogram* GridPointHistogram() {
  static obs::Histogram* const grid_point_us =
      obs::Registry::Default().GetHistogram(
          "cloudsurv_ml_grid_point_us",
          "Summed fold-item time of one grid-search point (CPU time)");
  return grid_point_us;
}

// One (grid-point × fold) work item: train on the fold's train view,
// return validation accuracy. Views throughout — no Subset copies.
// `duration_us` (optional) receives the item's measured time.
Result<double> EvaluateFold(const Dataset& data, const Fold& fold,
                            const ForestParams& params, uint64_t fold_seed,
                            double* duration_us = nullptr) {
  obs::ScopedTimer timer(CvItemHistogram());
  RandomForestClassifier forest;
  CLOUDSURV_RETURN_NOT_OK(
      forest.FitOnRows(data, fold.train, params, fold_seed));
  CLOUDSURV_ASSIGN_OR_RETURN(std::vector<int> preds,
                             forest.PredictRows(data, fold.validation));
  std::vector<int> truth;
  truth.reserve(fold.validation.size());
  for (size_t r : fold.validation) truth.push_back(data.label(r));
  CLOUDSURV_ASSIGN_OR_RETURN(ClassificationScores scores,
                             ComputeScores(truth, preds));
  const double elapsed_us = timer.Stop();
  if (duration_us != nullptr) *duration_us = elapsed_us;
  return scores.accuracy;
}

// Runs every (fold set × fold) item — sequentially or on a pool — and
// fills accuracies[i][j]. Item seeds come in pre-derived; the first
// error in flattened (i, j) order wins, so failures are deterministic
// too. When the pool is on, inner forest fits are forced single-
// threaded (forests are seed-deterministic, so this cannot change any
// score — it only stops the thread count from multiplying).
Status RunFoldItems(const Dataset& data,
                    const std::vector<ForestParams>& configs,
                    const std::vector<std::vector<Fold>>& fold_sets,
                    const std::vector<std::vector<uint64_t>>& item_seeds,
                    int num_threads,
                    std::vector<std::vector<double>>& accuracies) {
  accuracies.assign(configs.size(), {});
  // Measured item durations (slot per item: workers write disjoint
  // elements, futures synchronize the reads below). Summed per tuning
  // point into the grid-point histogram after the harvest.
  std::vector<std::vector<double>> item_durations_us(configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    accuracies[i].assign(fold_sets[i].size(), 0.0);
    item_durations_us[i].assign(fold_sets[i].size(), 0.0);
  }
  auto observe_point_totals = [&item_durations_us]() {
    for (const std::vector<double>& point : item_durations_us) {
      double total_us = 0.0;
      for (double d : point) total_us += d;
      GridPointHistogram()->Observe(total_us);
    }
  };
  if (num_threads <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) {
      for (size_t j = 0; j < fold_sets[i].size(); ++j) {
        CLOUDSURV_ASSIGN_OR_RETURN(
            accuracies[i][j],
            EvaluateFold(data, fold_sets[i][j], configs[i],
                         item_seeds[i][j], &item_durations_us[i][j]));
      }
    }
    observe_point_totals();
    return Status::OK();
  }

  std::vector<ForestParams> worker_params = configs;
  for (ForestParams& p : worker_params) p.num_threads = 1;
  std::vector<std::vector<std::future<Result<double>>>> futures(
      configs.size());
  size_t total_items = 0;
  for (size_t i = 0; i < configs.size(); ++i) {
    total_items += fold_sets[i].size();
  }
  ThreadPool pool(static_cast<size_t>(num_threads), total_items);
  for (size_t i = 0; i < configs.size(); ++i) {
    futures[i].reserve(fold_sets[i].size());
    for (size_t j = 0; j < fold_sets[i].size(); ++j) {
      futures[i].push_back(pool.Submit([&data, &fold_sets, &worker_params,
                                        &item_seeds, &item_durations_us, i,
                                        j]() {
        return EvaluateFold(data, fold_sets[i][j], worker_params[i],
                            item_seeds[i][j], &item_durations_us[i][j]);
      }));
    }
  }
  Status first_error = Status::OK();
  for (size_t i = 0; i < configs.size(); ++i) {
    for (size_t j = 0; j < fold_sets[i].size(); ++j) {
      Result<double> r = futures[i][j].get();
      if (!r.ok()) {
        if (first_error.ok()) first_error = r.status();
        continue;
      }
      accuracies[i][j] = r.value();
    }
  }
  observe_point_totals();
  return first_error;
}

}  // namespace

Result<double> CrossValidateForest(const Dataset& data,
                                   const ForestParams& params, int k,
                                   uint64_t seed, int num_threads) {
  std::vector<std::vector<Fold>> fold_sets(1);
  CLOUDSURV_ASSIGN_OR_RETURN(fold_sets[0], KFoldSplit(data, k, seed));
  std::vector<std::vector<uint64_t>> item_seeds(1);
  for (size_t j = 0; j < fold_sets[0].size(); ++j) {
    item_seeds[0].push_back(seed + 1 + j);
  }
  std::vector<std::vector<double>> accuracies;
  CLOUDSURV_RETURN_NOT_OK(RunFoldItems(data, {params}, fold_sets,
                                       item_seeds, num_threads,
                                       accuracies));
  double total_accuracy = 0.0;
  for (double a : accuracies[0]) total_accuracy += a;
  return total_accuracy / static_cast<double>(accuracies[0].size());
}

Result<GridSearchResult> GridSearchForest(
    const Dataset& data, const std::vector<ForestParams>& grid, int k,
    uint64_t seed, int num_threads) {
  if (grid.empty()) {
    return Status::InvalidArgument("grid search needs a non-empty grid");
  }
  // Pre-derive every fold set and item seed from (seed, i, j) alone —
  // identical to evaluating the grid sequentially.
  std::vector<std::vector<Fold>> fold_sets(grid.size());
  std::vector<std::vector<uint64_t>> item_seeds(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    const uint64_t cell_seed = seed + i * 7919;
    CLOUDSURV_ASSIGN_OR_RETURN(fold_sets[i],
                               KFoldSplit(data, k, cell_seed));
    for (size_t j = 0; j < fold_sets[i].size(); ++j) {
      item_seeds[i].push_back(cell_seed + 1 + j);
    }
  }
  std::vector<std::vector<double>> accuracies;
  CLOUDSURV_RETURN_NOT_OK(RunFoldItems(data, grid, fold_sets, item_seeds,
                                       num_threads, accuracies));

  GridSearchResult result;
  result.best_score = -1.0;
  for (size_t i = 0; i < grid.size(); ++i) {
    double total = 0.0;
    for (double a : accuracies[i]) total += a;
    const double score = total / static_cast<double>(accuracies[i].size());
    result.all_scores.emplace_back(grid[i], score);
    if (score > result.best_score) {
      result.best_score = score;
      result.best_params = grid[i];
    }
  }
  return result;
}

std::vector<ForestParams> DefaultForestGrid() {
  std::vector<ForestParams> grid;
  for (int trees : {60}) {
    for (int depth : {8, 12, 16}) {
      for (size_t min_leaf : {size_t{1}, size_t{5}}) {
        ForestParams p;
        p.num_trees = trees;
        p.max_depth = depth;
        p.min_samples_leaf = min_leaf;
        p.max_features = MaxFeaturesRule::kSqrt;
        grid.push_back(p);
      }
    }
  }
  return grid;
}

}  // namespace cloudsurv::ml
