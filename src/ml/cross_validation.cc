#include "ml/cross_validation.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "ml/metrics.h"

namespace cloudsurv::ml {

namespace {

// Shuffled row indices grouped by class label.
std::vector<std::vector<size_t>> ShuffledClassBuckets(const Dataset& data,
                                                      Rng& rng,
                                                      bool stratified) {
  std::vector<std::vector<size_t>> buckets;
  if (stratified) {
    buckets.resize(static_cast<size_t>(data.num_classes()));
    for (size_t i = 0; i < data.num_rows(); ++i) {
      buckets[static_cast<size_t>(data.label(i))].push_back(i);
    }
  } else {
    buckets.resize(1);
    buckets[0].resize(data.num_rows());
    std::iota(buckets[0].begin(), buckets[0].end(), 0);
  }
  for (auto& b : buckets) {
    std::shuffle(b.begin(), b.end(), rng.engine());
  }
  return buckets;
}

}  // namespace

Result<TrainTestIndices> TrainTestSplit(const Dataset& data,
                                        double test_fraction, uint64_t seed,
                                        bool stratified) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot split empty dataset");
  }
  if (!(test_fraction > 0.0 && test_fraction < 1.0)) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  Rng rng(seed);
  TrainTestIndices out;
  for (auto& bucket : ShuffledClassBuckets(data, rng, stratified)) {
    const size_t n_test = static_cast<size_t>(
        static_cast<double>(bucket.size()) * test_fraction + 0.5);
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (i < n_test) {
        out.test.push_back(bucket[i]);
      } else {
        out.train.push_back(bucket[i]);
      }
    }
  }
  if (out.train.empty() || out.test.empty()) {
    return Status::InvalidArgument(
        "split produced an empty train or test part");
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

Result<std::vector<Fold>> KFoldSplit(const Dataset& data, int k,
                                     uint64_t seed, bool stratified) {
  if (k < 2) {
    return Status::InvalidArgument("k-fold requires k >= 2");
  }
  if (data.num_rows() < static_cast<size_t>(k)) {
    return Status::InvalidArgument("fewer rows than folds");
  }
  Rng rng(seed);
  std::vector<std::vector<size_t>> fold_members(static_cast<size_t>(k));
  size_t cursor = 0;
  for (auto& bucket : ShuffledClassBuckets(data, rng, stratified)) {
    for (size_t i = 0; i < bucket.size(); ++i) {
      fold_members[cursor % static_cast<size_t>(k)].push_back(bucket[i]);
      ++cursor;
    }
  }
  std::vector<Fold> folds(static_cast<size_t>(k));
  for (size_t f = 0; f < folds.size(); ++f) {
    folds[f].validation = fold_members[f];
    std::sort(folds[f].validation.begin(), folds[f].validation.end());
    for (size_t g = 0; g < folds.size(); ++g) {
      if (g == f) continue;
      folds[f].train.insert(folds[f].train.end(), fold_members[g].begin(),
                            fold_members[g].end());
    }
    std::sort(folds[f].train.begin(), folds[f].train.end());
    if (folds[f].train.empty() || folds[f].validation.empty()) {
      return Status::InvalidArgument("k-fold produced an empty fold");
    }
  }
  return folds;
}

Result<double> CrossValidateForest(const Dataset& data,
                                   const ForestParams& params, int k,
                                   uint64_t seed) {
  CLOUDSURV_ASSIGN_OR_RETURN(std::vector<Fold> folds,
                             KFoldSplit(data, k, seed));
  double total_accuracy = 0.0;
  uint64_t fold_seed = seed;
  for (const Fold& fold : folds) {
    ++fold_seed;
    CLOUDSURV_ASSIGN_OR_RETURN(Dataset train, data.Subset(fold.train));
    CLOUDSURV_ASSIGN_OR_RETURN(Dataset valid, data.Subset(fold.validation));
    RandomForestClassifier forest;
    CLOUDSURV_RETURN_NOT_OK(forest.Fit(train, params, fold_seed));
    CLOUDSURV_ASSIGN_OR_RETURN(std::vector<int> preds,
                               forest.PredictBatch(valid));
    CLOUDSURV_ASSIGN_OR_RETURN(ClassificationScores scores,
                               ComputeScores(valid.labels(), preds));
    total_accuracy += scores.accuracy;
  }
  return total_accuracy / static_cast<double>(folds.size());
}

Result<GridSearchResult> GridSearchForest(
    const Dataset& data, const std::vector<ForestParams>& grid, int k,
    uint64_t seed) {
  if (grid.empty()) {
    return Status::InvalidArgument("grid search needs a non-empty grid");
  }
  GridSearchResult result;
  result.best_score = -1.0;
  for (size_t i = 0; i < grid.size(); ++i) {
    CLOUDSURV_ASSIGN_OR_RETURN(
        double score,
        CrossValidateForest(data, grid[i], k, seed + i * 7919));
    result.all_scores.emplace_back(grid[i], score);
    if (score > result.best_score) {
      result.best_score = score;
      result.best_params = grid[i];
    }
  }
  return result;
}

std::vector<ForestParams> DefaultForestGrid() {
  std::vector<ForestParams> grid;
  for (int trees : {60}) {
    for (int depth : {8, 12, 16}) {
      for (size_t min_leaf : {size_t{1}, size_t{5}}) {
        ForestParams p;
        p.num_trees = trees;
        p.max_depth = depth;
        p.min_samples_leaf = min_leaf;
        p.max_features = MaxFeaturesRule::kSqrt;
        grid.push_back(p);
      }
    }
  }
  return grid;
}

}  // namespace cloudsurv::ml
