#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/rng.h"

namespace cloudsurv::ml {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double LogLoss(const std::vector<int>& labels,
               const std::vector<double>& scores) {
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double p =
        std::clamp(Sigmoid(scores[i]), 1e-12, 1.0 - 1e-12);
    loss -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return loss / static_cast<double>(labels.size());
}

}  // namespace

// Shared state of one histogram-mode Fit. Per (feature, bin) the flat
// histogram holds 3 doubles: [gradient sum, hessian sum, row count].
struct GradientBoostedTreesClassifier::BinnedGbdtContext {
  static constexpr size_t kStride = 3;

  const BinnedDataset* binned = nullptr;
  const std::vector<double>* gradients = nullptr;
  const std::vector<double>* hessians = nullptr;
  const GbdtParams* params = nullptr;
  std::vector<size_t> offset;  ///< Per-feature start in the flat layout.
  size_t hist_size = 0;

  void ComputeHistogram(const std::vector<size_t>& indices, size_t begin,
                        size_t end, std::vector<double>& out) const {
    std::fill(out.begin(), out.end(), 0.0);
    const std::vector<double>& g = *gradients;
    const std::vector<double>& h = *hessians;
    for (size_t f = 0; f < binned->num_features(); ++f) {
      if (binned->constant(f)) continue;
      const uint8_t* column = binned->column(f);
      double* hist = out.data() + offset[f];
      for (size_t i = begin; i < end; ++i) {
        const size_t row = indices[i];
        double* cell = hist + static_cast<size_t>(column[row]) * kStride;
        cell[0] += g[row];
        cell[1] += h[row];
        cell[2] += 1.0;
      }
    }
  }
};

double GradientBoostedTreesClassifier::Tree::Predict(
    const std::vector<double>& row) const {
  const Node* node = &nodes[0];
  while (node->feature >= 0) {
    node = row[static_cast<size_t>(node->feature)] <= node->threshold
               ? &nodes[static_cast<size_t>(node->left)]
               : &nodes[static_cast<size_t>(node->right)];
  }
  return node->value;
}

Status GradientBoostedTreesClassifier::Fit(const Dataset& data,
                                           const GbdtParams& params,
                                           uint64_t seed) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit GBDT on empty data");
  }
  if (data.num_classes() != 2) {
    return Status::InvalidArgument("GBDT supports binary labels only");
  }
  if (params.num_rounds <= 0 || params.learning_rate <= 0.0 ||
      params.max_depth < 0 ||
      !(params.subsample > 0.0 && params.subsample <= 1.0)) {
    return Status::InvalidArgument("invalid GBDT params");
  }
  const size_t n = data.num_rows();
  num_features_ = data.num_features();
  trees_.clear();
  train_loss_.clear();
  importances_.assign(num_features_, 0.0);

  // Base score: log-odds of the class prior.
  const double q = std::clamp(data.ClassFraction(1), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(q / (1.0 - q));

  // Bin the matrix once; codes are reused by every boosting round (the
  // gradients change per round, the binning never does).
  BinnedDataset binned;
  BinnedGbdtContext ctx;
  const bool histogram =
      params.split_algorithm == SplitAlgorithm::kHistogram;
  if (histogram) {
    CLOUDSURV_ASSIGN_OR_RETURN(binned, BinnedDataset::FromDataset(data));
  }

  std::vector<double> scores(n, base_score_);
  std::vector<double> gradients(n), hessians(n);
  if (histogram) {
    ctx.binned = &binned;
    ctx.gradients = &gradients;
    ctx.hessians = &hessians;
    ctx.params = &params;
    ctx.offset.resize(num_features_);
    size_t off = 0;
    for (size_t f = 0; f < num_features_; ++f) {
      ctx.offset[f] = off;
      off += static_cast<size_t>(binned.num_bins(f)) *
             BinnedGbdtContext::kStride;
    }
    ctx.hist_size = off;
  }
  Rng rng(seed);

  for (int round = 0; round < params.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(scores[i]);
      gradients[i] = p - static_cast<double>(data.label(i));
      hessians[i] = std::max(p * (1.0 - p), 1e-12);
    }
    // Row subsample.
    std::vector<size_t> indices;
    if (params.subsample < 1.0) {
      indices.reserve(static_cast<size_t>(
          static_cast<double>(n) * params.subsample) + 1);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Uniform() < params.subsample) indices.push_back(i);
      }
      if (indices.empty()) indices.push_back(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
    } else {
      indices.resize(n);
      std::iota(indices.begin(), indices.end(), 0);
    }

    Tree tree;
    if (histogram) {
      BuildNodeBinned(ctx, indices, 0, indices.size(), 0, &tree, {});
    } else {
      BuildNode(data, gradients, hessians, indices, 0, indices.size(), 0,
                params, &tree);
    }
    // Update scores with the shrunk tree on ALL rows.
    for (size_t i = 0; i < n; ++i) {
      scores[i] += tree.Predict(data.row(i));
    }
    trees_.push_back(std::move(tree));
    train_loss_.push_back(LogLoss(data.labels(), scores));
  }

  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  return Status::OK();
}

int GradientBoostedTreesClassifier::BuildNode(
    const Dataset& data, const std::vector<double>& gradients,
    const std::vector<double>& hessians, std::vector<size_t>& indices,
    size_t begin, size_t end, int depth, const GbdtParams& params,
    Tree* tree) {
  const size_t n = end - begin;
  double g_total = 0.0, h_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    g_total += gradients[indices[i]];
    h_total += hessians[indices[i]];
  }
  const double parent_objective =
      g_total * g_total / (h_total + params.lambda);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.value =
        -params.learning_rate * g_total / (h_total + params.lambda);
    tree->nodes.push_back(leaf);
    return static_cast<int>(tree->nodes.size() - 1);
  };

  if (depth >= params.max_depth || n < 2 * params.min_samples_leaf) {
    return make_leaf();
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-10;
  std::vector<std::pair<double, size_t>> sorted(n);  // (value, row)
  for (size_t f = 0; f < num_features_; ++f) {
    for (size_t i = 0; i < n; ++i) {
      const size_t row = indices[begin + i];
      sorted[i] = {data.feature(row, f), row};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;
    double g_left = 0.0, h_left = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      g_left += gradients[sorted[i].second];
      h_left += hessians[sorted[i].second];
      if (sorted[i].first == sorted[i + 1].first) continue;
      const size_t n_left = i + 1;
      const size_t n_right = n - n_left;
      if (n_left < params.min_samples_leaf ||
          n_right < params.min_samples_leaf) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      const double gain =
          g_left * g_left / (h_left + params.lambda) +
          g_right * g_right / (h_right + params.lambda) -
          parent_objective;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }
  if (best_feature < 0) {
    return make_leaf();
  }

  auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](size_t row) {
        return data.feature(row, static_cast<size_t>(best_feature)) <=
               best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    return make_leaf();
  }
  importances_[static_cast<size_t>(best_feature)] += best_gain;

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[static_cast<size_t>(node_index)].feature = best_feature;
  tree->nodes[static_cast<size_t>(node_index)].threshold = best_threshold;
  const int left = BuildNode(data, gradients, hessians, indices, begin, mid,
                             depth + 1, params, tree);
  const int right = BuildNode(data, gradients, hessians, indices, mid, end,
                              depth + 1, params, tree);
  tree->nodes[static_cast<size_t>(node_index)].left = left;
  tree->nodes[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

int GradientBoostedTreesClassifier::BuildNodeBinned(
    BinnedGbdtContext& ctx, std::vector<size_t>& indices, size_t begin,
    size_t end, int depth, Tree* tree, std::vector<double> node_hist) {
  const GbdtParams& params = *ctx.params;
  constexpr size_t S = BinnedGbdtContext::kStride;
  const size_t n = end - begin;
  double g_total = 0.0, h_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    g_total += (*ctx.gradients)[indices[i]];
    h_total += (*ctx.hessians)[indices[i]];
  }
  const double parent_objective =
      g_total * g_total / (h_total + params.lambda);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.value =
        -params.learning_rate * g_total / (h_total + params.lambda);
    tree->nodes.push_back(leaf);
    return static_cast<int>(tree->nodes.size() - 1);
  };

  if (depth >= params.max_depth || n < 2 * params.min_samples_leaf) {
    return make_leaf();
  }

  if (node_hist.empty()) {
    node_hist.assign(ctx.hist_size, 0.0);
    ctx.ComputeHistogram(indices, begin, end, node_hist);
  }

  int best_feature = -1;
  int best_bin = -1;
  double best_gain = 1e-10;
  for (size_t f = 0; f < ctx.binned->num_features(); ++f) {
    const int num_bins = ctx.binned->num_bins(f);
    if (num_bins < 2) continue;
    const double* h = node_hist.data() + ctx.offset[f];
    double g_left = 0.0, h_left = 0.0;
    size_t n_left = 0;
    for (int b = 0; b + 1 < num_bins; ++b) {
      const double* cell = h + static_cast<size_t>(b) * S;
      g_left += cell[0];
      h_left += cell[1];
      if (cell[2] == 0.0) continue;  // empty bin: same cut as previous
      n_left += static_cast<size_t>(cell[2]);
      const size_t n_right = n - n_left;
      if (n_right == 0) break;
      if (n_left < params.min_samples_leaf ||
          n_right < params.min_samples_leaf) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      const double gain = g_left * g_left / (h_left + params.lambda) +
                          g_right * g_right / (h_right + params.lambda) -
                          parent_objective;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = b;
      }
    }
  }
  if (best_feature < 0) {
    return make_leaf();
  }

  const uint8_t* best_column =
      ctx.binned->column(static_cast<size_t>(best_feature));
  auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](size_t row) {
        return static_cast<int>(best_column[row]) <= best_bin;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    return make_leaf();
  }
  importances_[static_cast<size_t>(best_feature)] += best_gain;

  // Refine the threshold toward the node-local gap midpoint (see
  // BinnedDataset::refined_threshold).
  int next_bin = best_bin + 1;
  {
    const double* h =
        node_hist.data() + ctx.offset[static_cast<size_t>(best_feature)];
    const int num_bins =
        ctx.binned->num_bins(static_cast<size_t>(best_feature));
    while (next_bin + 1 < num_bins &&
           h[static_cast<size_t>(next_bin) * S + 2] == 0.0) {
      ++next_bin;
    }
  }

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[static_cast<size_t>(node_index)].feature = best_feature;
  tree->nodes[static_cast<size_t>(node_index)].threshold =
      ctx.binned->refined_threshold(static_cast<size_t>(best_feature),
                                    best_bin, next_bin);

  // Parent-minus-sibling: scan only the smaller child's histogram.
  const size_t n_left_child = mid - begin;
  const size_t n_right_child = end - mid;
  auto child_may_split = [&](size_t child_n) {
    return depth + 1 < params.max_depth &&
           child_n >= 2 * params.min_samples_leaf;
  };
  std::vector<double> left_hist;
  std::vector<double> right_hist;
  if (child_may_split(n_left_child) || child_may_split(n_right_child)) {
    std::vector<double> small(ctx.hist_size, 0.0);
    if (n_left_child <= n_right_child) {
      ctx.ComputeHistogram(indices, begin, mid, small);
      for (size_t i = 0; i < ctx.hist_size; ++i) node_hist[i] -= small[i];
      left_hist = std::move(small);
      right_hist = std::move(node_hist);
    } else {
      ctx.ComputeHistogram(indices, mid, end, small);
      for (size_t i = 0; i < ctx.hist_size; ++i) node_hist[i] -= small[i];
      right_hist = std::move(small);
      left_hist = std::move(node_hist);
    }
  }

  const int left = BuildNodeBinned(ctx, indices, begin, mid, depth + 1,
                                   tree, std::move(left_hist));
  const int right = BuildNodeBinned(ctx, indices, mid, end, depth + 1,
                                    tree, std::move(right_hist));
  tree->nodes[static_cast<size_t>(node_index)].left = left;
  tree->nodes[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

double GradientBoostedTreesClassifier::PredictLogit(
    const std::vector<double>& row) const {
  double score = base_score_;
  for (const Tree& tree : trees_) score += tree.Predict(row);
  return score;
}

double GradientBoostedTreesClassifier::PredictProbability(
    const std::vector<double>& row) const {
  return Sigmoid(PredictLogit(row));
}

int GradientBoostedTreesClassifier::Predict(
    const std::vector<double>& row) const {
  return PredictProbability(row) > 0.5 ? 1 : 0;
}

Result<std::vector<int>> GradientBoostedTreesClassifier::PredictBatch(
    const Dataset& data) const {
  if (!fitted()) {
    return Status::FailedPrecondition("GBDT is not fitted");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(Predict(data.row(i)));
  }
  return out;
}

Result<std::vector<double>>
GradientBoostedTreesClassifier::PredictPositiveProba(
    const Dataset& data) const {
  if (!fitted()) {
    return Status::FailedPrecondition("GBDT is not fitted");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<double> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(PredictProbability(data.row(i)));
  }
  return out;
}

std::string GradientBoostedTreesClassifier::Serialize() const {
  char header[128];
  std::snprintf(header, sizeof(header), "gbdt %zu %zu %.17g\n",
                trees_.size(), num_features_, base_score_);
  std::string out = header;
  out += "importances";
  for (double v : importances_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    out += buf;
  }
  out += "\n";
  for (const Tree& tree : trees_) {
    out += "gtree " + std::to_string(tree.nodes.size()) + "\n";
    for (const Node& node : tree.nodes) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%d %.17g %d %d %.17g\n",
                    node.feature, node.threshold, node.left, node.right,
                    node.value);
      out += buf;
    }
  }
  return out;
}

Result<GradientBoostedTreesClassifier>
GradientBoostedTreesClassifier::Deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  GradientBoostedTreesClassifier model;
  size_t num_trees = 0;
  if (!(is >> tag >> num_trees >> model.num_features_ >>
        model.base_score_) ||
      tag != "gbdt") {
    return Status::InvalidArgument("malformed gbdt header");
  }
  if (!(is >> tag) || tag != "importances") {
    return Status::InvalidArgument("missing gbdt importances");
  }
  model.importances_.resize(model.num_features_);
  for (double& v : model.importances_) {
    if (!(is >> v)) {
      return Status::InvalidArgument("malformed gbdt importances");
    }
  }
  model.trees_.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    size_t num_nodes = 0;
    if (!(is >> tag >> num_nodes) || tag != "gtree") {
      return Status::InvalidArgument("malformed gtree header");
    }
    Tree tree;
    tree.nodes.resize(num_nodes);
    for (Node& node : tree.nodes) {
      if (!(is >> node.feature >> node.threshold >> node.left >>
            node.right >> node.value)) {
        return Status::InvalidArgument("malformed gtree node");
      }
      if (node.feature >= static_cast<int>(model.num_features_) ||
          node.left >= static_cast<int>(num_nodes) ||
          node.right >= static_cast<int>(num_nodes)) {
        return Status::InvalidArgument("gtree node out of range");
      }
    }
    if (tree.nodes.empty()) {
      return Status::InvalidArgument("empty gtree");
    }
    model.trees_.push_back(std::move(tree));
  }
  if (model.trees_.empty()) {
    return Status::InvalidArgument("serialized gbdt has no trees");
  }
  return model;
}

}  // namespace cloudsurv::ml
