#ifndef CLOUDSURV_FEATURES_FEATURE_PLAN_H_
#define CLOUDSURV_FEATURES_FEATURE_PLAN_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "features/features.h"
#include "ml/dataset.h"
#include "telemetry/store.h"

namespace cloudsurv::features {

/// Feature families in the exact column order ExtractFeatures emits
/// them (the names family covers both the server and database name
/// blocks).
enum class FeatureFamily : uint8_t {
  kCreationTime = 0,
  kNames,
  kSize,
  kSlo,
  kSubscriptionType,
  kSubscriptionHistory,
  kNameNgrams,
};
inline constexpr size_t kNumFeatureFamilies = 7;

/// A FeatureConfig compiled once into a resolved column layout, plus a
/// batch extraction engine over it.
///
/// The batch path is bit-identical to per-row ExtractFeatures — same
/// arithmetic, same accumulation order — but amortizes the work the
/// scalar path repeats per database: sibling subscriptions are scanned
/// once per subscription (a sorted sibling table with per-sample peak
/// prefix maxima, O(S log S) per subscription instead of the scalar
/// path's O(S^2) re-scan), records are materialized once, and all
/// output goes into one caller-provided row-major matrix with scratch
/// reused across rows.
class FeaturePlan {
 public:
  /// One family's slice of the output row.
  struct FamilySlot {
    bool enabled = false;
    size_t offset = 0;  ///< First column of the family.
    size_t width = 0;   ///< Columns; 0 when disabled.
  };

  FeaturePlan() = default;

  /// Compiles `config` into a plan. Cheap (no allocation beyond the
  /// fixed slot table) — callers may compile per batch. Fails on a
  /// config every extraction would reject (non-positive
  /// observation_days), with the same message the scalar path returns.
  static Result<FeaturePlan> Compile(const FeatureConfig& config);

  bool compiled() const { return compiled_; }
  const FeatureConfig& config() const { return config_; }

  /// Total row width; equals FeatureNames(config()).size().
  size_t num_features() const { return width_; }

  const FamilySlot& family(FeatureFamily f) const {
    return slots_[static_cast<size_t>(f)];
  }

  /// Column names of the compiled layout (built on demand).
  std::vector<std::string> feature_names() const {
    return FeatureNames(config_);
  }

  /// Extracts features for every id into `out`, a caller-provided
  /// row-major matrix of ids.size() x num_features() doubles; row i
  /// holds ids[i]. Strict: returns the first per-id failure (unknown
  /// id, store not readable, database dropped inside the observation
  /// window) exactly as a scalar FindDatabase + ExtractFeatures loop
  /// would, in ids order.
  ///
  /// `pool` optionally fans the sweep out over whole subscription
  /// groups; rows land in disjoint slices, so results are identical at
  /// any thread count. Do not pass a pool whose workers are executing
  /// this call (nested submission into a bounded queue can deadlock).
  Status ExtractBatch(const telemetry::TelemetryStore& store,
                      std::span<const telemetry::DatabaseId> ids,
                      double* out, ThreadPool* pool = nullptr) const;

  /// Like ExtractBatch but per-row: row_ok[i] is 1 when row i was
  /// extracted and 0 when the scalar path would have failed for ids[i]
  /// (that row's output slice is left untouched). Only misuse (an
  /// uncompiled plan) returns a non-OK status.
  Status ExtractBatchPartial(const telemetry::TelemetryStore& store,
                             std::span<const telemetry::DatabaseId> ids,
                             double* out, std::vector<uint8_t>* row_ok,
                             ThreadPool* pool = nullptr) const;

 private:
  FeatureConfig config_;
  std::array<FamilySlot, kNumFeatureFamilies> slots_;
  size_t width_ = 0;
  bool compiled_ = false;

  Status ExtractImpl(const telemetry::TelemetryStore& store,
                     std::span<const telemetry::DatabaseId> ids, double* out,
                     std::vector<uint8_t>* row_ok, ThreadPool* pool) const;
};

/// BuildDataset through a compiled plan: one batch extraction into a
/// contiguous matrix (optionally fanned over `pool`), then the usual
/// ml::Dataset assembly. Bit-identical to the config-taking overload.
Result<ml::Dataset> BuildDataset(const telemetry::TelemetryStore& store,
                                 const std::vector<telemetry::DatabaseId>& ids,
                                 const std::vector<int>& labels,
                                 const FeaturePlan& plan, int num_classes = 2,
                                 ThreadPool* pool = nullptr);

}  // namespace cloudsurv::features

#endif  // CLOUDSURV_FEATURES_FEATURE_PLAN_H_
