#ifndef CLOUDSURV_FEATURES_FEATURES_H_
#define CLOUDSURV_FEATURES_FEATURES_H_

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "telemetry/store.h"

namespace cloudsurv::features {

/// Which feature families to extract (paper section 4.2). Families can
/// be toggled off for the ablation experiments of section 5.4.
struct FeatureConfig {
  /// The observation span x, in days: features may only use telemetry
  /// with timestamp <= created_at + observation_days (no leakage).
  double observation_days = 2.0;
  bool include_creation_time = true;
  bool include_names = true;
  bool include_size = true;
  bool include_slo = true;
  bool include_subscription_type = true;
  bool include_subscription_history = true;
  /// Hashed character-bigram counts of the database name (the paper's
  /// n-gram experiment; found not to help — off by default).
  bool include_name_ngrams = false;
  int name_ngram_buckets = 8;
};

/// Fixed per-family column widths (the names family is emitted twice,
/// once per name; the n-gram family width is max(1, buckets)).
inline constexpr size_t kCreationTimeWidth = 6;
inline constexpr size_t kNameShapeWidth = 6;
inline constexpr size_t kSizeWidth = 5;
inline constexpr size_t kSloWidth = 11;
inline constexpr size_t kSubscriptionTypeWidth = 6;
inline constexpr size_t kSubscriptionHistoryWidth = 19;

/// Total number of columns ExtractFeatures emits under `config`.
/// Equals FeatureNames(config).size() without building the strings.
size_t FeatureWidth(const FeatureConfig& config);

/// Ordered names of the features produced under `config`; matches the
/// layout of ExtractFeatures exactly.
std::vector<std::string> FeatureNames(const FeatureConfig& config);

/// Extracts the full feature vector for one database. The record must
/// belong to `store`. Requires the database to have been alive for the
/// whole observation window (the paper only predicts for databases that
/// survived x days).
Result<std::vector<double>> ExtractFeatures(
    const telemetry::TelemetryStore& store,
    const telemetry::DatabaseRecord& record, const FeatureConfig& config);

/// --- Per-family extractors (exposed for unit testing) ---
///
/// Each family has an allocation-free `*Into` form writing into a span
/// of exactly the family's width; the vector-returning forms are thin
/// wrappers kept for tests and call sites that want a fresh vector.

/// Creation-time features (5 + holiday flag): local day of week (1-7),
/// day of month, week of year, month, hour of day, is-regional-holiday.
void CreationTimeFeaturesInto(const telemetry::TelemetryStore& store,
                              const telemetry::DatabaseRecord& record,
                              std::span<double> out);
std::vector<double> CreationTimeFeatures(
    const telemetry::TelemetryStore& store,
    const telemetry::DatabaseRecord& record);

/// Name-shape features (6): length, distinct characters, distinct-char
/// rate, contains letters+digits, contains upper+lower case, contains
/// non-alphanumeric symbols. Applied to both server and database names.
void NameShapeFeaturesInto(std::string_view name, std::span<double> out);
std::vector<double> NameShapeFeatures(std::string_view name);

/// Size features (5): max/min/avg/stddev of observed size (MB) within
/// the observation window, and relative change from first to last
/// sample.
void SizeFeaturesInto(const telemetry::DatabaseRecord& record,
                      telemetry::Timestamp prediction_time,
                      std::span<double> out);
std::vector<double> SizeFeatures(const telemetry::DatabaseRecord& record,
                                 telemetry::Timestamp prediction_time);

/// Edition / performance-level features (11): #SLO changes, #edition
/// changes, #distinct SLOs, #distinct editions, edition at prediction,
/// level at prediction, edition delta and level delta vs creation, and
/// max/min/avg DTUs held during the window.
void SloFeaturesInto(const telemetry::DatabaseRecord& record,
                     telemetry::Timestamp prediction_time,
                     std::span<double> out);
std::vector<double> SloFeatures(const telemetry::DatabaseRecord& record,
                                telemetry::Timestamp prediction_time);

/// One-hot over the subscription type at creation (6 values).
void SubscriptionTypeFeaturesInto(const telemetry::DatabaseRecord& record,
                                  std::span<double> out);
std::vector<double> SubscriptionTypeFeatures(
    const telemetry::DatabaseRecord& record);

/// Subscription-history features (19), computed strictly from telemetry
/// visible at prediction time Tp, for the paper's three sibling groups:
///   group 1 — siblings created before Tc and still alive at Tc;
///   group 2 — all siblings created before Tc (superset of group 1);
///   group 3 — siblings created in (Tc, Tp].
/// Per group: count; for groups 1-2 additionally max/min/avg/std of the
/// siblings' peak observed size and of their observed lifespans (days,
/// censored at Tp).
void SubscriptionHistoryFeaturesInto(
    const telemetry::TelemetryStore& store,
    const telemetry::DatabaseRecord& record,
    telemetry::Timestamp prediction_time, std::span<double> out);
std::vector<double> SubscriptionHistoryFeatures(
    const telemetry::TelemetryStore& store,
    const telemetry::DatabaseRecord& record,
    telemetry::Timestamp prediction_time);

/// Hashed character-bigram counts of the database name. The span form
/// requires out.size() == max(1, buckets).
void NameNgramFeaturesInto(std::string_view name, int buckets,
                           std::span<double> out);
std::vector<double> NameNgramFeatures(std::string_view name, int buckets);

/// Builds an ml::Dataset for the given databases and labels. The
/// default is the paper's binary task (1 = long-lived); pass a larger
/// `num_classes` for multi-class labelings (e.g. the 3-class lifespan
/// taxonomy). `ids` and `labels` are parallel.
Result<ml::Dataset> BuildDataset(const telemetry::TelemetryStore& store,
                                 const std::vector<telemetry::DatabaseId>& ids,
                                 const std::vector<int>& labels,
                                 const FeatureConfig& config,
                                 int num_classes = 2);

/// Names of all features in a family, used by ablation benches to drop
/// one family at a time. `family` is one of: "creation_time", "names",
/// "size", "slo", "subscription_type", "subscription_history".
Result<std::vector<std::string>> FeatureFamilyNames(
    const FeatureConfig& config, const std::string& family);

}  // namespace cloudsurv::features

#endif  // CLOUDSURV_FEATURES_FEATURES_H_
