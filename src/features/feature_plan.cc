#include "features/feature_plan.h"

#include <algorithm>
#include <future>
#include <limits>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "stats/descriptive.h"
#include "telemetry/civil_time.h"
#include "telemetry/types.h"

namespace cloudsurv::features {

namespace {

using telemetry::DatabaseId;
using telemetry::DatabaseRecord;
using telemetry::kSecondsPerDay;
using telemetry::SubscriptionId;
using telemetry::TelemetryStore;
using telemetry::Timestamp;

/// Sentinel for a never-dropped sibling: compares greater than any real
/// timestamp, so `dropped < tp` and `dropped > tc` need no optional.
constexpr Timestamp kNeverDropped = std::numeric_limits<Timestamp>::max();

/// Below this many rows the fan-out bookkeeping costs more than it
/// saves; the sweep runs inline on the caller's thread.
constexpr size_t kMinRowsForFanout = 256;

struct Metrics {
  obs::Counter* rows_total = nullptr;
  obs::Histogram* extract_latency_us = nullptr;
  obs::Counter* subscription_groups_total = nullptr;
};

const Metrics& FeatureMetrics() {
  static const Metrics* kMetrics = [] {
    auto* m = new Metrics();
    obs::Registry& registry = obs::Registry::Default();
    m->rows_total = registry.GetCounter(
        "cloudsurv_features_rows_total",
        "Feature rows produced by batch extraction", "rows");
    m->extract_latency_us = registry.GetHistogram(
        "cloudsurv_features_extract_latency_us",
        "Wall time of one FeaturePlan batch extraction call", "us");
    m->subscription_groups_total = registry.GetCounter(
        "cloudsurv_features_subscription_groups_total",
        "Subscription sibling groups assembled by batch extraction",
        "groups");
    return m;
  }();
  return *kMetrics;
}

Timestamp PredictionTime(const DatabaseRecord& record,
                         const FeatureConfig& config) {
  return record.created_at +
         static_cast<Timestamp>(config.observation_days *
                                static_cast<double>(kSecondsPerDay));
}

void WriteSummary(const stats::RunningStats& acc, double* out) {
  out[0] = acc.max();
  out[1] = acc.min();
  out[2] = acc.mean();
  out[3] = acc.stddev();
}

/// One subscription's siblings flattened for shared reuse across every
/// database of that subscription: creation/drop columns in creation
/// order (so group boundaries are binary searches) and per-sibling size
/// samples with running prefix maxima (so a sibling's peak size at any
/// Tp is one binary search instead of a rescan). Built once per
/// subscription; cleared, not deallocated, between groups.
struct SiblingTable {
  std::vector<Timestamp> created;
  std::vector<Timestamp> dropped;     ///< kNeverDropped when censored.
  std::vector<uint32_t> sample_off;   ///< created.size() + 1 offsets.
  std::vector<Timestamp> sample_ts;
  std::vector<double> sample_peak;    ///< Prefix max per sibling.

  void Build(const TelemetryStore& store, SubscriptionId sub) {
    created.clear();
    dropped.clear();
    sample_off.clear();
    sample_ts.clear();
    sample_peak.clear();
    sample_off.push_back(0);
    for (DatabaseId sid : store.DatabasesOfSubscription(sub)) {
      auto sibling = store.FindDatabase(sid);
      if (!sibling.ok()) continue;  // mirrors the scalar path's skip
      created.push_back(sibling->created_at);
      dropped.push_back(sibling->dropped_at.has_value()
                            ? *sibling->dropped_at
                            : kNeverDropped);
      double run_peak = 0.0;
      bool first = true;
      for (const telemetry::SizeObservation& o : sibling->size_samples) {
        run_peak = first ? o.size_mb : std::max(run_peak, o.size_mb);
        first = false;
        sample_ts.push_back(o.timestamp);
        sample_peak.push_back(run_peak);
      }
      sample_off.push_back(static_cast<uint32_t>(sample_ts.size()));
    }
  }

  /// Peak observed size of sibling `k` over samples at or before `tp`.
  /// max(0.0, prefix-max) equals the scalar left fold from 0.0 for the
  /// finite sizes telemetry carries.
  double PeakBefore(size_t k, Timestamp tp) const {
    const uint32_t begin = sample_off[k];
    const uint32_t end = sample_off[k + 1];
    const Timestamp* first = sample_ts.data() + begin;
    const Timestamp* last = sample_ts.data() + end;
    const Timestamp* it = std::upper_bound(first, last, tp);
    if (it == first) return 0.0;
    return std::max(0.0, sample_peak[begin + (it - first) - 1]);
  }
};

/// Subscription-history features of one target against a prebuilt
/// sibling table. Group membership comes from binary searches on the
/// creation column; the single pass over the created-before-Tc prefix
/// feeds the per-group Welford accumulators in creation order — the
/// exact value sequences SubscriptionHistoryFeaturesInto feeds them, so
/// every output double is bit-identical. The target itself sits in the
/// table but its created_at == Tc, so the strict comparisons exclude it
/// just as the scalar path's id check does.
void HistoryFromTable(const SiblingTable& table, Timestamp tc, Timestamp tp,
                      double* out) {
  const Timestamp* cb = table.created.data();
  const Timestamp* ce = cb + table.created.size();
  const size_t before_tc = std::lower_bound(cb, ce, tc) - cb;
  const size_t through_tc = std::upper_bound(cb, ce, tc) - cb;
  const size_t through_tp = std::upper_bound(cb, ce, tp) - cb;
  const size_t g3_count =
      through_tp > through_tc ? through_tp - through_tc : 0;

  size_t g1_count = 0;
  stats::RunningStats g1_size, g1_life, g2_size, g2_life;
  for (size_t k = 0; k < before_tc; ++k) {
    const double peak = table.PeakBefore(k, tp);
    const Timestamp end = table.dropped[k] < tp ? table.dropped[k] : tp;
    const double lifespan = static_cast<double>(end - table.created[k]) /
                            static_cast<double>(kSecondsPerDay);
    g2_size.Add(peak);
    g2_life.Add(lifespan);
    if (table.dropped[k] > tc) {  // alive at Tc
      ++g1_count;
      g1_size.Add(peak);
      g1_life.Add(lifespan);
    }
  }
  out[0] = static_cast<double>(g1_count);
  out[1] = static_cast<double>(before_tc);
  out[2] = static_cast<double>(g3_count);
  WriteSummary(g1_size, out + 3);
  WriteSummary(g1_life, out + 7);
  WriteSummary(g2_size, out + 11);
  WriteSummary(g2_life, out + 15);
}

}  // namespace

Result<FeaturePlan> FeaturePlan::Compile(const FeatureConfig& config) {
  if (config.observation_days <= 0.0) {
    return Status::InvalidArgument("observation_days must be positive");
  }
  FeaturePlan plan;
  plan.config_ = config;
  size_t offset = 0;
  const auto set = [&plan, &offset](FeatureFamily f, bool enabled,
                                    size_t width) {
    FamilySlot& slot = plan.slots_[static_cast<size_t>(f)];
    slot.enabled = enabled;
    slot.offset = offset;
    slot.width = enabled ? width : 0;
    offset += slot.width;
  };
  set(FeatureFamily::kCreationTime, config.include_creation_time,
      kCreationTimeWidth);
  set(FeatureFamily::kNames, config.include_names, 2 * kNameShapeWidth);
  set(FeatureFamily::kSize, config.include_size, kSizeWidth);
  set(FeatureFamily::kSlo, config.include_slo, kSloWidth);
  set(FeatureFamily::kSubscriptionType, config.include_subscription_type,
      kSubscriptionTypeWidth);
  set(FeatureFamily::kSubscriptionHistory,
      config.include_subscription_history, kSubscriptionHistoryWidth);
  set(FeatureFamily::kNameNgrams, config.include_name_ngrams,
      static_cast<size_t>(std::max(1, config.name_ngram_buckets)));
  plan.width_ = offset;
  plan.compiled_ = true;
  return plan;
}

Status FeaturePlan::ExtractBatch(const TelemetryStore& store,
                                 std::span<const DatabaseId> ids, double* out,
                                 ThreadPool* pool) const {
  return ExtractImpl(store, ids, out, /*row_ok=*/nullptr, pool);
}

Status FeaturePlan::ExtractBatchPartial(const TelemetryStore& store,
                                        std::span<const DatabaseId> ids,
                                        double* out,
                                        std::vector<uint8_t>* row_ok,
                                        ThreadPool* pool) const {
  if (row_ok == nullptr) {
    return Status::InvalidArgument("row_ok must not be null");
  }
  return ExtractImpl(store, ids, out, row_ok, pool);
}

Status FeaturePlan::ExtractImpl(const TelemetryStore& store,
                                std::span<const DatabaseId> ids, double* out,
                                std::vector<uint8_t>* row_ok,
                                ThreadPool* pool) const {
  if (!compiled_) {
    return Status::FailedPrecondition("feature plan is not compiled");
  }
  const Metrics& metrics = FeatureMetrics();
  obs::ScopedTimer timer(metrics.extract_latency_us);
  const size_t n = ids.size();
  const bool strict = row_ok == nullptr;
  if (row_ok != nullptr) row_ok->assign(n, 1);

  // Phase A — resolve and validate every row in ids order, with the
  // exact check sequence (and messages) of the scalar FindDatabase +
  // ExtractFeatures loop, so strict mode fails identically and partial
  // mode marks exactly the rows the scalar path would reject.
  std::vector<uint32_t> valid;    // index into ids (== output row)
  std::vector<DatabaseRecord> recs;
  std::vector<Timestamp> tps;
  valid.reserve(n);
  recs.reserve(n);
  tps.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto record = store.FindDatabase(ids[i]);
    if (!record.ok()) {
      if (strict) return record.status();
      (*row_ok)[i] = 0;
      continue;
    }
    if (!store.readable()) {
      if (strict) {
        return Status::FailedPrecondition("telemetry store is not readable");
      }
      (*row_ok)[i] = 0;
      continue;
    }
    const Timestamp tp = PredictionTime(*record, config_);
    if (record->dropped_at.has_value() && *record->dropped_at < tp) {
      if (strict) {
        return Status::FailedPrecondition(
            "database did not survive the observation window; the "
            "prediction task is undefined for it");
      }
      (*row_ok)[i] = 0;
      continue;
    }
    valid.push_back(static_cast<uint32_t>(i));
    recs.push_back(std::move(*record));
    tps.push_back(tp);
  }

  const size_t n_valid = valid.size();
  const FamilySlot& history = family(FeatureFamily::kSubscriptionHistory);

  // Phase B — order valid rows so each subscription's databases are
  // consecutive; its sibling table is then built once and shared.
  std::vector<uint32_t> ordered(n_valid);
  std::iota(ordered.begin(), ordered.end(), 0u);
  size_t num_groups = 0;
  if (history.enabled && n_valid > 0) {
    std::sort(ordered.begin(), ordered.end(),
              [&recs](uint32_t a, uint32_t b) {
                const SubscriptionId sa = recs[a].subscription_id;
                const SubscriptionId sb = recs[b].subscription_id;
                return sa != sb ? sa < sb : a < b;
              });
    num_groups = 1;
    for (size_t k = 1; k < n_valid; ++k) {
      if (recs[ordered[k]].subscription_id !=
          recs[ordered[k - 1]].subscription_id) {
        ++num_groups;
      }
    }
  }

  // Extraction worker over one ordered range. Ranges are cut at
  // subscription boundaries and output rows are disjoint, so results
  // are identical at any thread count.
  const auto process = [&](size_t range_begin, size_t range_end) {
    SiblingTable table;
    SubscriptionId table_sub = 0;
    bool have_table = false;
    const FamilySlot& creation = family(FeatureFamily::kCreationTime);
    const FamilySlot& names = family(FeatureFamily::kNames);
    const FamilySlot& size = family(FeatureFamily::kSize);
    const FamilySlot& slo = family(FeatureFamily::kSlo);
    const FamilySlot& sub_type = family(FeatureFamily::kSubscriptionType);
    const FamilySlot& ngrams = family(FeatureFamily::kNameNgrams);
    for (size_t k = range_begin; k < range_end; ++k) {
      const uint32_t v = ordered[k];
      const DatabaseRecord& rec = recs[v];
      const Timestamp tp = tps[v];
      double* row = out + static_cast<size_t>(valid[v]) * width_;
      if (creation.enabled) {
        CreationTimeFeaturesInto(store, rec,
                                 {row + creation.offset, creation.width});
      }
      if (names.enabled) {
        NameShapeFeaturesInto(rec.server_name,
                              {row + names.offset, kNameShapeWidth});
        NameShapeFeaturesInto(
            rec.database_name,
            {row + names.offset + kNameShapeWidth, kNameShapeWidth});
      }
      if (size.enabled) {
        SizeFeaturesInto(rec, tp, {row + size.offset, size.width});
      }
      if (slo.enabled) {
        SloFeaturesInto(rec, tp, {row + slo.offset, slo.width});
      }
      if (sub_type.enabled) {
        SubscriptionTypeFeaturesInto(rec,
                                     {row + sub_type.offset, sub_type.width});
      }
      if (history.enabled) {
        // A subscription with a single target in this batch gains
        // nothing from a shared table; the scalar kernel skips the
        // table-build allocations (this is the common case for the
        // serving engine's small shard batches). Both kernels are
        // bit-identical, so the choice is invisible in the output.
        const bool lone_target =
            (k == range_begin || recs[ordered[k - 1]].subscription_id !=
                                     rec.subscription_id) &&
            (k + 1 == range_end || recs[ordered[k + 1]].subscription_id !=
                                       rec.subscription_id);
        if (lone_target) {
          SubscriptionHistoryFeaturesInto(
              store, rec, tp, {row + history.offset, history.width});
        } else {
          if (!have_table || rec.subscription_id != table_sub) {
            table.Build(store, rec.subscription_id);
            table_sub = rec.subscription_id;
            have_table = true;
          }
          HistoryFromTable(table, rec.created_at, tp, row + history.offset);
        }
      }
      if (ngrams.enabled) {
        NameNgramFeaturesInto(rec.database_name, config_.name_ngram_buckets,
                              {row + ngrams.offset, ngrams.width});
      }
    }
  };

  size_t n_chunks = 1;
  if (pool != nullptr && pool->num_threads() > 1 &&
      n_valid >= kMinRowsForFanout) {
    n_chunks = std::min(pool->num_threads() * 4,
                        n_valid / (kMinRowsForFanout / 2));
  }
  if (n_chunks <= 1) {
    process(0, n_valid);
  } else {
    // Cut points land only on subscription boundaries (any row boundary
    // when the history family is off).
    std::vector<size_t> cuts{0};
    const size_t target = (n_valid + n_chunks - 1) / n_chunks;
    size_t since_cut = 0;
    for (size_t k = 1; k < n_valid; ++k) {
      ++since_cut;
      const bool boundary =
          !history.enabled || recs[ordered[k]].subscription_id !=
                                  recs[ordered[k - 1]].subscription_id;
      if (since_cut >= target && boundary) {
        cuts.push_back(k);
        since_cut = 0;
      }
    }
    cuts.push_back(n_valid);
    std::vector<std::future<void>> futures;
    futures.reserve(cuts.size() - 1);
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      const size_t a = cuts[c];
      const size_t b = cuts[c + 1];
      futures.push_back(pool->Submit([&process, a, b] { process(a, b); }));
    }
    for (auto& f : futures) f.get();
  }

  metrics.rows_total->Increment(n_valid);
  if (num_groups > 0) {
    metrics.subscription_groups_total->Increment(num_groups);
  }
  return Status::OK();
}

Result<ml::Dataset> BuildDataset(const TelemetryStore& store,
                                 const std::vector<DatabaseId>& ids,
                                 const std::vector<int>& labels,
                                 const FeaturePlan& plan, int num_classes,
                                 ThreadPool* pool) {
  if (ids.size() != labels.size()) {
    return Status::InvalidArgument("ids and labels must be parallel");
  }
  if (!plan.compiled()) {
    return Status::FailedPrecondition("feature plan is not compiled");
  }
  const size_t width = plan.num_features();
  std::vector<double> matrix(ids.size() * width);
  CLOUDSURV_RETURN_NOT_OK(plan.ExtractBatch(store, ids, matrix.data(), pool));
  std::vector<std::vector<double>> rows;
  rows.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    rows.emplace_back(matrix.begin() + static_cast<ptrdiff_t>(i * width),
                      matrix.begin() + static_cast<ptrdiff_t>((i + 1) * width));
  }
  return ml::Dataset::Make(plan.feature_names(), std::move(rows), labels,
                           num_classes);
}

}  // namespace cloudsurv::features
