#include "features/features.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <unordered_set>

#include "stats/descriptive.h"
#include "telemetry/civil_time.h"
#include "telemetry/types.h"

namespace cloudsurv::features {

namespace {

using telemetry::DatabaseRecord;
using telemetry::Edition;
using telemetry::kSecondsPerDay;
using telemetry::SloLadder;
using telemetry::TelemetryStore;
using telemetry::Timestamp;

constexpr const char* kCreationTimeNames[] = {
    "create_day_of_week", "create_day_of_month", "create_week_of_year",
    "create_month",       "create_hour",         "create_is_holiday"};

constexpr const char* kNameShapeNames[] = {
    "length",        "distinct_chars",     "distinct_char_rate",
    "has_letters_and_digits", "has_mixed_case", "has_symbols"};

constexpr const char* kSizeNames[] = {"size_max_mb", "size_min_mb",
                                      "size_avg_mb", "size_std_mb",
                                      "size_rel_change"};

constexpr const char* kSloNames[] = {
    "slo_num_changes",      "slo_num_edition_changes",
    "slo_num_distinct",     "slo_num_distinct_editions",
    "slo_edition_at_pred",  "slo_level_at_pred",
    "slo_edition_delta",    "slo_level_delta",
    "slo_dtu_max",          "slo_dtu_min",
    "slo_dtu_avg"};

constexpr const char* kHistoryGroupNames[] = {"g1", "g2", "g3"};

Timestamp PredictionTime(const DatabaseRecord& record,
                         const FeatureConfig& config) {
  return record.created_at +
         static_cast<Timestamp>(config.observation_days *
                                static_cast<double>(kSecondsPerDay));
}

void AppendSummary(const std::vector<double>& values,
                   std::vector<double>* out) {
  const stats::Summary s = stats::Summarize(values);
  out->push_back(s.max);
  out->push_back(s.min);
  out->push_back(s.mean);
  out->push_back(s.stddev);
}

}  // namespace

std::vector<double> CreationTimeFeatures(const TelemetryStore& store,
                                         const DatabaseRecord& record) {
  const telemetry::CivilDateTime local =
      telemetry::ToCivil(record.created_at, store.utc_offset_minutes());
  return {
      static_cast<double>(local.day_of_week),
      static_cast<double>(local.day),
      static_cast<double>(local.week_of_year),
      static_cast<double>(local.month),
      static_cast<double>(local.hour),
      store.holidays().IsHolidayDate(local.year, local.month, local.day)
          ? 1.0
          : 0.0,
  };
}

std::vector<double> NameShapeFeatures(std::string_view name) {
  std::unordered_set<char> distinct(name.begin(), name.end());
  bool has_letter = false, has_digit = false, has_upper = false,
       has_lower = false, has_symbol = false;
  for (char raw : name) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalpha(c)) {
      has_letter = true;
      if (std::isupper(c)) has_upper = true;
      if (std::islower(c)) has_lower = true;
    } else if (std::isdigit(c)) {
      has_digit = true;
    } else {
      has_symbol = true;
    }
  }
  const double len = static_cast<double>(name.size());
  return {
      len,
      static_cast<double>(distinct.size()),
      len > 0.0 ? static_cast<double>(distinct.size()) / len : 0.0,
      has_letter && has_digit ? 1.0 : 0.0,
      has_upper && has_lower ? 1.0 : 0.0,
      has_symbol ? 1.0 : 0.0,
  };
}

std::vector<double> SizeFeatures(const DatabaseRecord& record,
                                 Timestamp prediction_time) {
  std::vector<double> sizes;
  for (const telemetry::SizeObservation& s : record.size_samples) {
    if (s.timestamp > prediction_time) break;
    sizes.push_back(s.size_mb);
  }
  std::vector<double> out;
  AppendSummary(sizes, &out);
  // Reorder AppendSummary's (max, min, avg, std) is already the paper's
  // order; add the relative first-to-last change.
  double rel_change = 0.0;
  if (sizes.size() >= 2 && sizes.front() > 0.0) {
    rel_change = (sizes.back() - sizes.front()) / sizes.front();
  }
  out.push_back(rel_change);
  return out;
}

std::vector<double> SloFeatures(const DatabaseRecord& record,
                                Timestamp prediction_time) {
  int num_changes = 0;
  int num_edition_changes = 0;
  std::set<int> distinct_slos = {record.initial_slo_index};
  std::set<int> distinct_editions = {
      static_cast<int>(record.initial_edition())};
  std::vector<double> dtus = {
      static_cast<double>(SloLadder()[record.initial_slo_index].dtus)};
  int current = record.initial_slo_index;
  for (const telemetry::SloChange& c : record.slo_changes) {
    if (c.timestamp > prediction_time) break;
    ++num_changes;
    if (SloLadder()[c.old_slo_index].edition !=
        SloLadder()[c.new_slo_index].edition) {
      ++num_edition_changes;
    }
    current = c.new_slo_index;
    distinct_slos.insert(current);
    distinct_editions.insert(static_cast<int>(SloLadder()[current].edition));
    dtus.push_back(static_cast<double>(SloLadder()[current].dtus));
  }
  const stats::Summary dtu_summary = stats::Summarize(dtus);
  const int edition_at_pred = static_cast<int>(SloLadder()[current].edition);
  const int edition_at_create = static_cast<int>(record.initial_edition());
  return {
      static_cast<double>(num_changes),
      static_cast<double>(num_edition_changes),
      static_cast<double>(distinct_slos.size()),
      static_cast<double>(distinct_editions.size()),
      static_cast<double>(edition_at_pred),
      static_cast<double>(current),
      static_cast<double>(edition_at_pred - edition_at_create),
      static_cast<double>(current - record.initial_slo_index),
      dtu_summary.max,
      dtu_summary.min,
      dtu_summary.mean,
  };
}

std::vector<double> SubscriptionTypeFeatures(const DatabaseRecord& record) {
  std::vector<double> out(telemetry::kNumSubscriptionTypes, 0.0);
  out[static_cast<size_t>(record.subscription_type)] = 1.0;
  return out;
}

std::vector<double> SubscriptionHistoryFeatures(
    const TelemetryStore& store, const DatabaseRecord& record,
    Timestamp prediction_time) {
  const Timestamp tc = record.created_at;
  const Timestamp tp = prediction_time;

  // Sibling groups; group 2 is a superset of group 1 (paper wording).
  std::vector<DatabaseRecord> group1, group2, group3;
  for (telemetry::DatabaseId sibling_id :
       store.DatabasesOfSubscription(record.subscription_id)) {
    if (sibling_id == record.id) continue;
    auto sibling = store.FindDatabase(sibling_id);
    if (!sibling.ok()) continue;
    const DatabaseRecord& s = *sibling;
    if (s.created_at > tp) continue;  // invisible at prediction time
    if (s.created_at < tc) {
      group2.push_back(s);
      if (!s.IsDroppedBy(tc)) group1.push_back(s);
    } else if (s.created_at > tc) {
      group3.push_back(s);
    }
  }

  auto peak_size_before = [tp](const DatabaseRecord& r) {
    double peak = 0.0;
    for (const telemetry::SizeObservation& s : r.size_samples) {
      if (s.timestamp > tp) break;
      peak = std::max(peak, s.size_mb);
    }
    return peak;
  };
  auto observed_lifespan = [tp](const DatabaseRecord& r) {
    Timestamp end = tp;
    if (r.dropped_at.has_value() && *r.dropped_at < end) {
      end = *r.dropped_at;
    }
    return static_cast<double>(end - r.created_at) /
           static_cast<double>(kSecondsPerDay);
  };

  std::vector<double> out;
  out.push_back(static_cast<double>(group1.size()));
  out.push_back(static_cast<double>(group2.size()));
  out.push_back(static_cast<double>(group3.size()));
  for (const auto* group : {&group1, &group2}) {
    std::vector<double> sizes, lifespans;
    sizes.reserve(group->size());
    lifespans.reserve(group->size());
    for (const DatabaseRecord& r : *group) {
      sizes.push_back(peak_size_before(r));
      lifespans.push_back(observed_lifespan(r));
    }
    AppendSummary(sizes, &out);
    AppendSummary(lifespans, &out);
  }
  return out;
}

std::vector<double> NameNgramFeatures(std::string_view name, int buckets) {
  std::vector<double> out(static_cast<size_t>(std::max(1, buckets)), 0.0);
  if (name.size() < 2) return out;
  for (size_t i = 0; i + 1 < name.size(); ++i) {
    const uint32_t h = static_cast<uint32_t>(
                           static_cast<unsigned char>(name[i])) *
                           31u +
                       static_cast<uint32_t>(
                           static_cast<unsigned char>(name[i + 1]));
    out[h % out.size()] += 1.0;
  }
  return out;
}

std::vector<std::string> FeatureNames(const FeatureConfig& config) {
  std::vector<std::string> names;
  if (config.include_creation_time) {
    for (const char* n : kCreationTimeNames) names.emplace_back(n);
  }
  if (config.include_names) {
    for (const char* prefix : {"server_name_", "db_name_"}) {
      for (const char* n : kNameShapeNames) {
        names.push_back(std::string(prefix) + n);
      }
    }
  }
  if (config.include_size) {
    for (const char* n : kSizeNames) names.emplace_back(n);
  }
  if (config.include_slo) {
    for (const char* n : kSloNames) names.emplace_back(n);
  }
  if (config.include_subscription_type) {
    for (int i = 0; i < telemetry::kNumSubscriptionTypes; ++i) {
      names.push_back(
          std::string("sub_type_") +
          telemetry::SubscriptionTypeToString(
              static_cast<telemetry::SubscriptionType>(i)));
    }
  }
  if (config.include_subscription_history) {
    for (const char* g : kHistoryGroupNames) {
      names.push_back(std::string("hist_") + g + "_count");
    }
    for (const char* g : {"g1", "g2"}) {
      for (const char* stat : {"max", "min", "avg", "std"}) {
        names.push_back(std::string("hist_") + g + "_size_" + stat);
      }
      for (const char* stat : {"max", "min", "avg", "std"}) {
        names.push_back(std::string("hist_") + g + "_lifespan_" + stat);
      }
    }
  }
  if (config.include_name_ngrams) {
    for (int i = 0; i < config.name_ngram_buckets; ++i) {
      names.push_back("db_name_ngram_" + std::to_string(i));
    }
  }
  return names;
}

namespace {

// Reorders the history-name emission above: counts come first, then the
// per-group stat blocks (size then lifespan). Keep the emission order in
// SubscriptionHistoryFeatures consistent: counts, then for g1: size
// stats then lifespan stats, then g2 likewise.
void AppendAll(std::vector<double>* dst, const std::vector<double>& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

}  // namespace

Result<std::vector<double>> ExtractFeatures(const TelemetryStore& store,
                                            const DatabaseRecord& record,
                                            const FeatureConfig& config) {
  if (!store.readable()) {
    return Status::FailedPrecondition("telemetry store is not readable");
  }
  if (config.observation_days <= 0.0) {
    return Status::InvalidArgument("observation_days must be positive");
  }
  const Timestamp tp = PredictionTime(record, config);
  if (record.dropped_at.has_value() && *record.dropped_at < tp) {
    return Status::FailedPrecondition(
        "database did not survive the observation window; the prediction "
        "task is undefined for it");
  }
  std::vector<double> out;
  if (config.include_creation_time) {
    AppendAll(&out, CreationTimeFeatures(store, record));
  }
  if (config.include_names) {
    AppendAll(&out, NameShapeFeatures(record.server_name));
    AppendAll(&out, NameShapeFeatures(record.database_name));
  }
  if (config.include_size) {
    AppendAll(&out, SizeFeatures(record, tp));
  }
  if (config.include_slo) {
    AppendAll(&out, SloFeatures(record, tp));
  }
  if (config.include_subscription_type) {
    AppendAll(&out, SubscriptionTypeFeatures(record));
  }
  if (config.include_subscription_history) {
    AppendAll(&out, SubscriptionHistoryFeatures(store, record, tp));
  }
  if (config.include_name_ngrams) {
    AppendAll(&out, NameNgramFeatures(record.database_name,
                                      config.name_ngram_buckets));
  }
  return out;
}

Result<ml::Dataset> BuildDataset(const TelemetryStore& store,
                                 const std::vector<telemetry::DatabaseId>& ids,
                                 const std::vector<int>& labels,
                                 const FeatureConfig& config,
                                 int num_classes) {
  if (ids.size() != labels.size()) {
    return Status::InvalidArgument("ids and labels must be parallel");
  }
  std::vector<std::vector<double>> rows;
  rows.reserve(ids.size());
  for (telemetry::DatabaseId id : ids) {
    CLOUDSURV_ASSIGN_OR_RETURN(const telemetry::DatabaseRecord record,
                               store.FindDatabase(id));
    CLOUDSURV_ASSIGN_OR_RETURN(std::vector<double> row,
                               ExtractFeatures(store, record, config));
    rows.push_back(std::move(row));
  }
  return ml::Dataset::Make(FeatureNames(config), std::move(rows), labels,
                           num_classes);
}

Result<std::vector<std::string>> FeatureFamilyNames(
    const FeatureConfig& config, const std::string& family) {
  FeatureConfig only;
  only.observation_days = config.observation_days;
  only.include_creation_time = false;
  only.include_names = false;
  only.include_size = false;
  only.include_slo = false;
  only.include_subscription_type = false;
  only.include_subscription_history = false;
  only.include_name_ngrams = false;
  only.name_ngram_buckets = config.name_ngram_buckets;
  if (family == "creation_time") {
    only.include_creation_time = true;
  } else if (family == "names") {
    only.include_names = true;
  } else if (family == "size") {
    only.include_size = true;
  } else if (family == "slo") {
    only.include_slo = true;
  } else if (family == "subscription_type") {
    only.include_subscription_type = true;
  } else if (family == "subscription_history") {
    only.include_subscription_history = true;
  } else {
    return Status::InvalidArgument("unknown feature family: " + family);
  }
  return FeatureNames(only);
}

}  // namespace cloudsurv::features
