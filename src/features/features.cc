#include "features/features.h"

#include <algorithm>
#include <bitset>
#include <cctype>
#include <cmath>

#include "features/feature_plan.h"
#include "stats/descriptive.h"
#include "telemetry/civil_time.h"
#include "telemetry/types.h"

namespace cloudsurv::features {

namespace {

using telemetry::DatabaseRecord;
using telemetry::Edition;
using telemetry::kSecondsPerDay;
using telemetry::SloLadder;
using telemetry::TelemetryStore;
using telemetry::Timestamp;

constexpr const char* kCreationTimeNames[] = {
    "create_day_of_week", "create_day_of_month", "create_week_of_year",
    "create_month",       "create_hour",         "create_is_holiday"};

constexpr const char* kNameShapeNames[] = {
    "length",        "distinct_chars",     "distinct_char_rate",
    "has_letters_and_digits", "has_mixed_case", "has_symbols"};

constexpr const char* kSizeNames[] = {"size_max_mb", "size_min_mb",
                                      "size_avg_mb", "size_std_mb",
                                      "size_rel_change"};

constexpr const char* kSloNames[] = {
    "slo_num_changes",      "slo_num_edition_changes",
    "slo_num_distinct",     "slo_num_distinct_editions",
    "slo_edition_at_pred",  "slo_level_at_pred",
    "slo_edition_delta",    "slo_level_delta",
    "slo_dtu_max",          "slo_dtu_min",
    "slo_dtu_avg"};

constexpr const char* kHistoryGroupNames[] = {"g1", "g2", "g3"};

static_assert(kCreationTimeWidth == std::size(kCreationTimeNames));
static_assert(kNameShapeWidth == std::size(kNameShapeNames));
static_assert(kSizeWidth == std::size(kSizeNames));
static_assert(kSloWidth == std::size(kSloNames));
static_assert(kSubscriptionTypeWidth ==
              static_cast<size_t>(telemetry::kNumSubscriptionTypes));

Timestamp PredictionTime(const DatabaseRecord& record,
                         const FeatureConfig& config) {
  return record.created_at +
         static_cast<Timestamp>(config.observation_days *
                                static_cast<double>(kSecondsPerDay));
}

// Writes a RunningStats accumulator in the paper's summary order
// (max, min, avg, std), matching what AppendSummary produced from
// stats::Summarize — same Welford accumulator, same rounding.
void WriteSummary(const stats::RunningStats& acc, double* out) {
  out[0] = acc.max();
  out[1] = acc.min();
  out[2] = acc.mean();
  out[3] = acc.stddev();
}

}  // namespace

void CreationTimeFeaturesInto(const TelemetryStore& store,
                              const DatabaseRecord& record,
                              std::span<double> out) {
  const telemetry::CivilDateTime local =
      telemetry::ToCivil(record.created_at, store.utc_offset_minutes());
  out[0] = static_cast<double>(local.day_of_week);
  out[1] = static_cast<double>(local.day);
  out[2] = static_cast<double>(local.week_of_year);
  out[3] = static_cast<double>(local.month);
  out[4] = static_cast<double>(local.hour);
  out[5] = store.holidays().IsHolidayDate(local.year, local.month, local.day)
               ? 1.0
               : 0.0;
}

std::vector<double> CreationTimeFeatures(const TelemetryStore& store,
                                         const DatabaseRecord& record) {
  std::vector<double> out(kCreationTimeWidth);
  CreationTimeFeaturesInto(store, record, out);
  return out;
}

void NameShapeFeaturesInto(std::string_view name, std::span<double> out) {
  bool seen[256] = {};
  size_t distinct = 0;
  bool has_letter = false, has_digit = false, has_upper = false,
       has_lower = false, has_symbol = false;
  for (char raw : name) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (!seen[c]) {
      seen[c] = true;
      ++distinct;
    }
    if (std::isalpha(c)) {
      has_letter = true;
      if (std::isupper(c)) has_upper = true;
      if (std::islower(c)) has_lower = true;
    } else if (std::isdigit(c)) {
      has_digit = true;
    } else {
      has_symbol = true;
    }
  }
  const double len = static_cast<double>(name.size());
  out[0] = len;
  out[1] = static_cast<double>(distinct);
  out[2] = len > 0.0 ? static_cast<double>(distinct) / len : 0.0;
  out[3] = has_letter && has_digit ? 1.0 : 0.0;
  out[4] = has_upper && has_lower ? 1.0 : 0.0;
  out[5] = has_symbol ? 1.0 : 0.0;
}

std::vector<double> NameShapeFeatures(std::string_view name) {
  std::vector<double> out(kNameShapeWidth);
  NameShapeFeaturesInto(name, out);
  return out;
}

void SizeFeaturesInto(const DatabaseRecord& record,
                      Timestamp prediction_time, std::span<double> out) {
  stats::RunningStats acc;
  double first = 0.0;
  double last = 0.0;
  for (const telemetry::SizeObservation& s : record.size_samples) {
    if (s.timestamp > prediction_time) break;
    if (acc.count() == 0) first = s.size_mb;
    last = s.size_mb;
    acc.Add(s.size_mb);
  }
  WriteSummary(acc, out.data());
  double rel_change = 0.0;
  if (acc.count() >= 2 && first > 0.0) {
    rel_change = (last - first) / first;
  }
  out[4] = rel_change;
}

std::vector<double> SizeFeatures(const DatabaseRecord& record,
                                 Timestamp prediction_time) {
  std::vector<double> out(kSizeWidth);
  SizeFeaturesInto(record, prediction_time, out);
  return out;
}

void SloFeaturesInto(const DatabaseRecord& record,
                     Timestamp prediction_time, std::span<double> out) {
  const auto& ladder = SloLadder();
  int num_changes = 0;
  int num_edition_changes = 0;
  // Distinct sets as bitmasks; the ladder is a short fixed catalog.
  std::bitset<256> distinct_slos;
  std::bitset<16> distinct_editions;
  distinct_slos.set(static_cast<size_t>(record.initial_slo_index));
  distinct_editions.set(static_cast<size_t>(record.initial_edition()));
  stats::RunningStats dtus;
  dtus.Add(static_cast<double>(ladder[record.initial_slo_index].dtus));
  int current = record.initial_slo_index;
  for (const telemetry::SloChange& c : record.slo_changes) {
    if (c.timestamp > prediction_time) break;
    ++num_changes;
    if (ladder[c.old_slo_index].edition != ladder[c.new_slo_index].edition) {
      ++num_edition_changes;
    }
    current = c.new_slo_index;
    distinct_slos.set(static_cast<size_t>(current));
    distinct_editions.set(static_cast<size_t>(ladder[current].edition));
    dtus.Add(static_cast<double>(ladder[current].dtus));
  }
  const int edition_at_pred = static_cast<int>(ladder[current].edition);
  const int edition_at_create = static_cast<int>(record.initial_edition());
  out[0] = static_cast<double>(num_changes);
  out[1] = static_cast<double>(num_edition_changes);
  out[2] = static_cast<double>(distinct_slos.count());
  out[3] = static_cast<double>(distinct_editions.count());
  out[4] = static_cast<double>(edition_at_pred);
  out[5] = static_cast<double>(current);
  out[6] = static_cast<double>(edition_at_pred - edition_at_create);
  out[7] = static_cast<double>(current - record.initial_slo_index);
  out[8] = dtus.max();
  out[9] = dtus.min();
  out[10] = dtus.mean();
}

std::vector<double> SloFeatures(const DatabaseRecord& record,
                                Timestamp prediction_time) {
  std::vector<double> out(kSloWidth);
  SloFeaturesInto(record, prediction_time, out);
  return out;
}

void SubscriptionTypeFeaturesInto(const DatabaseRecord& record,
                                  std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  out[static_cast<size_t>(record.subscription_type)] = 1.0;
}

std::vector<double> SubscriptionTypeFeatures(const DatabaseRecord& record) {
  std::vector<double> out(kSubscriptionTypeWidth);
  SubscriptionTypeFeaturesInto(record, out);
  return out;
}

void SubscriptionHistoryFeaturesInto(const TelemetryStore& store,
                                     const DatabaseRecord& record,
                                     Timestamp prediction_time,
                                     std::span<double> out) {
  const Timestamp tc = record.created_at;
  const Timestamp tp = prediction_time;

  // Sibling groups; group 2 is a superset of group 1 (paper wording).
  // One pass in creation order feeding per-group Welford accumulators —
  // the same value sequences the materialized-group implementation fed
  // AppendSummary, so every output double is identical.
  size_t g1_count = 0, g2_count = 0, g3_count = 0;
  stats::RunningStats g1_size, g1_life, g2_size, g2_life;
  for (telemetry::DatabaseId sibling_id :
       store.DatabasesOfSubscription(record.subscription_id)) {
    if (sibling_id == record.id) continue;
    auto sibling = store.FindDatabase(sibling_id);
    if (!sibling.ok()) continue;
    const DatabaseRecord& s = *sibling;
    if (s.created_at > tp) continue;  // invisible at prediction time
    if (s.created_at < tc) {
      double peak = 0.0;
      for (const telemetry::SizeObservation& o : s.size_samples) {
        if (o.timestamp > tp) break;
        peak = std::max(peak, o.size_mb);
      }
      Timestamp end = tp;
      if (s.dropped_at.has_value() && *s.dropped_at < end) {
        end = *s.dropped_at;
      }
      const double lifespan = static_cast<double>(end - s.created_at) /
                              static_cast<double>(kSecondsPerDay);
      ++g2_count;
      g2_size.Add(peak);
      g2_life.Add(lifespan);
      if (!s.IsDroppedBy(tc)) {
        ++g1_count;
        g1_size.Add(peak);
        g1_life.Add(lifespan);
      }
    } else if (s.created_at > tc) {
      ++g3_count;
    }
  }

  out[0] = static_cast<double>(g1_count);
  out[1] = static_cast<double>(g2_count);
  out[2] = static_cast<double>(g3_count);
  WriteSummary(g1_size, out.data() + 3);
  WriteSummary(g1_life, out.data() + 7);
  WriteSummary(g2_size, out.data() + 11);
  WriteSummary(g2_life, out.data() + 15);
}

std::vector<double> SubscriptionHistoryFeatures(
    const TelemetryStore& store, const DatabaseRecord& record,
    Timestamp prediction_time) {
  std::vector<double> out(kSubscriptionHistoryWidth);
  SubscriptionHistoryFeaturesInto(store, record, prediction_time, out);
  return out;
}

void NameNgramFeaturesInto(std::string_view name, int buckets,
                           std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  if (name.size() < 2) return;
  for (size_t i = 0; i + 1 < name.size(); ++i) {
    const uint32_t h = static_cast<uint32_t>(
                           static_cast<unsigned char>(name[i])) *
                           31u +
                       static_cast<uint32_t>(
                           static_cast<unsigned char>(name[i + 1]));
    out[h % out.size()] += 1.0;
  }
  (void)buckets;
}

std::vector<double> NameNgramFeatures(std::string_view name, int buckets) {
  std::vector<double> out(static_cast<size_t>(std::max(1, buckets)), 0.0);
  NameNgramFeaturesInto(name, buckets, out);
  return out;
}

size_t FeatureWidth(const FeatureConfig& config) {
  size_t width = 0;
  if (config.include_creation_time) width += kCreationTimeWidth;
  if (config.include_names) width += 2 * kNameShapeWidth;
  if (config.include_size) width += kSizeWidth;
  if (config.include_slo) width += kSloWidth;
  if (config.include_subscription_type) width += kSubscriptionTypeWidth;
  if (config.include_subscription_history) {
    width += kSubscriptionHistoryWidth;
  }
  if (config.include_name_ngrams) {
    width += static_cast<size_t>(std::max(1, config.name_ngram_buckets));
  }
  return width;
}

std::vector<std::string> FeatureNames(const FeatureConfig& config) {
  std::vector<std::string> names;
  names.reserve(FeatureWidth(config));
  if (config.include_creation_time) {
    for (const char* n : kCreationTimeNames) names.emplace_back(n);
  }
  if (config.include_names) {
    for (const char* prefix : {"server_name_", "db_name_"}) {
      for (const char* n : kNameShapeNames) {
        names.push_back(std::string(prefix) + n);
      }
    }
  }
  if (config.include_size) {
    for (const char* n : kSizeNames) names.emplace_back(n);
  }
  if (config.include_slo) {
    for (const char* n : kSloNames) names.emplace_back(n);
  }
  if (config.include_subscription_type) {
    for (int i = 0; i < telemetry::kNumSubscriptionTypes; ++i) {
      names.push_back(
          std::string("sub_type_") +
          telemetry::SubscriptionTypeToString(
              static_cast<telemetry::SubscriptionType>(i)));
    }
  }
  if (config.include_subscription_history) {
    for (const char* g : kHistoryGroupNames) {
      names.push_back(std::string("hist_") + g + "_count");
    }
    for (const char* g : {"g1", "g2"}) {
      for (const char* stat : {"max", "min", "avg", "std"}) {
        names.push_back(std::string("hist_") + g + "_size_" + stat);
      }
      for (const char* stat : {"max", "min", "avg", "std"}) {
        names.push_back(std::string("hist_") + g + "_lifespan_" + stat);
      }
    }
  }
  if (config.include_name_ngrams) {
    for (int i = 0; i < std::max(1, config.name_ngram_buckets); ++i) {
      names.push_back("db_name_ngram_" + std::to_string(i));
    }
  }
  return names;
}

Result<std::vector<double>> ExtractFeatures(const TelemetryStore& store,
                                            const DatabaseRecord& record,
                                            const FeatureConfig& config) {
  if (!store.readable()) {
    return Status::FailedPrecondition("telemetry store is not readable");
  }
  if (config.observation_days <= 0.0) {
    return Status::InvalidArgument("observation_days must be positive");
  }
  const Timestamp tp = PredictionTime(record, config);
  if (record.dropped_at.has_value() && *record.dropped_at < tp) {
    return Status::FailedPrecondition(
        "database did not survive the observation window; the prediction "
        "task is undefined for it");
  }
  std::vector<double> out(FeatureWidth(config));
  double* cursor = out.data();
  if (config.include_creation_time) {
    CreationTimeFeaturesInto(store, record, {cursor, kCreationTimeWidth});
    cursor += kCreationTimeWidth;
  }
  if (config.include_names) {
    NameShapeFeaturesInto(record.server_name, {cursor, kNameShapeWidth});
    cursor += kNameShapeWidth;
    NameShapeFeaturesInto(record.database_name, {cursor, kNameShapeWidth});
    cursor += kNameShapeWidth;
  }
  if (config.include_size) {
    SizeFeaturesInto(record, tp, {cursor, kSizeWidth});
    cursor += kSizeWidth;
  }
  if (config.include_slo) {
    SloFeaturesInto(record, tp, {cursor, kSloWidth});
    cursor += kSloWidth;
  }
  if (config.include_subscription_type) {
    SubscriptionTypeFeaturesInto(record, {cursor, kSubscriptionTypeWidth});
    cursor += kSubscriptionTypeWidth;
  }
  if (config.include_subscription_history) {
    SubscriptionHistoryFeaturesInto(store, record, tp,
                                    {cursor, kSubscriptionHistoryWidth});
    cursor += kSubscriptionHistoryWidth;
  }
  if (config.include_name_ngrams) {
    const size_t ngram_width =
        static_cast<size_t>(std::max(1, config.name_ngram_buckets));
    NameNgramFeaturesInto(record.database_name, config.name_ngram_buckets,
                          {cursor, ngram_width});
    cursor += ngram_width;
  }
  return out;
}

Result<ml::Dataset> BuildDataset(const TelemetryStore& store,
                                 const std::vector<telemetry::DatabaseId>& ids,
                                 const std::vector<int>& labels,
                                 const FeatureConfig& config,
                                 int num_classes) {
  CLOUDSURV_ASSIGN_OR_RETURN(FeaturePlan plan, FeaturePlan::Compile(config));
  return BuildDataset(store, ids, labels, plan, num_classes,
                      /*pool=*/nullptr);
}

Result<std::vector<std::string>> FeatureFamilyNames(
    const FeatureConfig& config, const std::string& family) {
  FeatureConfig only;
  only.observation_days = config.observation_days;
  only.include_creation_time = false;
  only.include_names = false;
  only.include_size = false;
  only.include_slo = false;
  only.include_subscription_type = false;
  only.include_subscription_history = false;
  only.include_name_ngrams = false;
  only.name_ngram_buckets = config.name_ngram_buckets;
  if (family == "creation_time") {
    only.include_creation_time = true;
  } else if (family == "names") {
    only.include_names = true;
  } else if (family == "size") {
    only.include_size = true;
  } else if (family == "slo") {
    only.include_slo = true;
  } else if (family == "subscription_type") {
    only.include_subscription_type = true;
  } else if (family == "subscription_history") {
    only.include_subscription_history = true;
  } else {
    return Status::InvalidArgument("unknown feature family: " + family);
  }
  return FeatureNames(only);
}

}  // namespace cloudsurv::features
