#ifndef CLOUDSURV_SERVING_EVENT_INGEST_H_
#define CLOUDSURV_SERVING_EVENT_INGEST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "telemetry/events.h"

namespace cloudsurv::serving {

/// Sharded, mutex-striped staging buffer between telemetry producers
/// and the scoring engine.
///
/// Many producer threads call Ingest() concurrently; each event lands in
/// the shard owned by its subscription (one mutex per shard, so
/// unrelated subscriptions never contend). The engine periodically calls
/// TakeAll()/TakeShard() from its polling thread to move the staged
/// batches out wholesale.
///
/// Sharding key: subscription_id, *not* database_id. Feature extraction
/// reads sibling databases of the same subscription (subscription-
/// history features), so keeping a subscription's whole event stream in
/// one shard lets a per-shard telemetry snapshot reproduce batch
/// scoring exactly.
class EventIngestBuffer {
 public:
  /// An optional fault injector is evaluated at
  /// `fault::Site::kIngestShard` (keyed by the target shard) on every
  /// Ingest() call: delays sleep before taking the shard lock, stalls
  /// sleep while holding it, and alloc/io failures make Ingest() return
  /// kInternal / kIOError without staging the event. nullptr disables
  /// the hook.
  explicit EventIngestBuffer(size_t num_shards,
                             fault::FaultInjector* fault_injector = nullptr);

  size_t num_shards() const { return shards_.size(); }

  /// Shard that owns `subscription_id`.
  size_t ShardOf(telemetry::SubscriptionId subscription_id) const;

  /// Stages one event (thread-safe). Rejects events with invalid ids so
  /// errors surface at the edge rather than at flush time.
  Status Ingest(telemetry::Event event);

  /// Moves shard `shard`'s staged events out (the shard is left empty).
  std::vector<telemetry::Event> TakeShard(size_t shard);

  /// Moves every shard's staged events out; element i of the result is
  /// shard i's batch, in arrival order.
  std::vector<std::vector<telemetry::Event>> TakeAll();

  /// Events accepted by Ingest() since construction.
  uint64_t events_ingested() const {
    return events_ingested_.load(std::memory_order_relaxed);
  }

  /// Events currently staged across all shards (exact; takes every
  /// shard lock).
  size_t pending_events() const;

  /// Lock-free approximation of pending_events() for hot-path watermark
  /// checks. Monotonic per shard between Ingest and TakeShard, so it can
  /// briefly over-count during a concurrent take but never drifts.
  size_t approx_pending() const {
    return pending_approx_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::vector<telemetry::Event> events;
    /// Process-wide per-shard series (label shard="i"; shared by every
    /// buffer with that shard index — see docs/observability.md).
    obs::Counter* events_total = nullptr;
    obs::Gauge* pending_events = nullptr;
  };

  // unique_ptr keeps Shard addresses stable (mutexes are immovable).
  std::vector<std::unique_ptr<Shard>> shards_;
  fault::FaultInjector* fault_injector_ = nullptr;
  obs::Counter* rejected_total_ = nullptr;
  std::atomic<uint64_t> events_ingested_{0};
  std::atomic<size_t> pending_approx_{0};
};

}  // namespace cloudsurv::serving

#endif  // CLOUDSURV_SERVING_EVENT_INGEST_H_
