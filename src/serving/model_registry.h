#ifndef CLOUDSURV_SERVING_MODEL_REGISTRY_H_
#define CLOUDSURV_SERVING_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/service.h"
#include "fault/fault.h"

namespace cloudsurv::serving {

/// Versioned store of immutable LongevityService snapshots with atomic
/// hot-swap.
///
/// A background retrain publishes a new snapshot with Publish(); scoring
/// threads grab the active snapshot with Current() and keep using that
/// exact model for the whole batch, so a swap mid-batch can never serve
/// a torn model — the old snapshot stays alive (shared_ptr) until its
/// last in-flight batch finishes. Activate() re-points the active
/// version for rollbacks.
///
/// Models are immutable once published: const access only, and callers
/// must not mutate the service behind the pointer.
class ModelRegistry {
 public:
  using ModelPtr = std::shared_ptr<const core::LongevityService>;

  /// One published snapshot.
  struct Entry {
    uint64_t version = 0;  ///< 1-based, monotonically increasing.
    std::string name;      ///< Free-form label ("2017-03-01-retrain").
    ModelPtr model;
  };

  /// The active model together with its version, read atomically.
  struct ActiveModel {
    uint64_t version = 0;  ///< 0 when the registry is empty.
    ModelPtr model;        ///< nullptr when the registry is empty.
  };

  /// An optional fault injector stretches the Publish() critical
  /// section (delay/stall faults at `fault::Site::kRegistryPublish`),
  /// widening the swap window that scoring threads race against.
  /// nullptr disables the hook.
  explicit ModelRegistry(fault::FaultInjector* fault_injector = nullptr)
      : fault_injector_(fault_injector) {}

  /// Publishes a snapshot and makes it active. Returns the new version.
  /// Rejects null models.
  Result<uint64_t> Publish(std::string name, ModelPtr model);

  /// Publishes a freshly trained (still mutable) service, compiling its
  /// flat inference representation first when `compile_inference` is
  /// set. Compilation happens before the snapshot becomes visible, so
  /// scoring threads only ever observe fully compiled versions — the
  /// hot-swap guarantees above are unchanged. The caller must hand over
  /// ownership (no other mutating references).
  Result<uint64_t> Publish(std::string name,
                           std::shared_ptr<core::LongevityService> model,
                           bool compile_inference = true);

  /// A literal nullptr matches both pointer overloads equally well;
  /// resolve it to the same rejection either would produce.
  Result<uint64_t> Publish(std::string name, std::nullptr_t) {
    return Publish(std::move(name), ModelPtr());
  }

  /// Loads a CSRV artifact from `path` and publishes it as `name`.
  /// The artifact is fully checksum-verified before the snapshot
  /// becomes visible, and its compiled forests bind straight to the
  /// (typically mmap'ed) file bytes — no recompilation, so
  /// publish-from-file is the fast rollback path. Corrupt, truncated,
  /// or version-mismatched files are rejected and the active model is
  /// left untouched.
  Result<uint64_t> PublishFromFile(
      std::string name, const std::string& path,
      const artifact::ArtifactReader::Options& reader_options);
  Result<uint64_t> PublishFromFile(std::string name,
                                   const std::string& path) {
    return PublishFromFile(std::move(name), path,
                           artifact::ArtifactReader::Options());
  }

  /// Persists the active snapshot as a CSRV artifact at `path`
  /// (atomic tmp-file + rename). FailedPrecondition when the registry
  /// is empty. Pair with PublishFromFile for on-disk rollback.
  Status PersistActive(const std::string& path) const;

  /// The active snapshot (nullptr if nothing was published yet).
  ModelPtr Current() const;

  /// The active snapshot and its version in one consistent read.
  ActiveModel CurrentWithVersion() const;

  uint64_t current_version() const;

  /// Looks up a published version (1-based).
  Result<Entry> Get(uint64_t version) const;

  /// Re-points the active model at an older version (rollback) or a
  /// newer one (canary promotion). NotFound for unknown versions.
  Status Activate(uint64_t version);

  size_t num_versions() const;

  /// All published versions, oldest first.
  std::vector<Entry> ListVersions() const;

 private:
  fault::FaultInjector* const fault_injector_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  size_t active_index_ = 0;  ///< Into entries_; valid iff !entries_.empty().
};

}  // namespace cloudsurv::serving

#endif  // CLOUDSURV_SERVING_MODEL_REGISTRY_H_
