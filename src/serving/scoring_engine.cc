#include "serving/scoring_engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <iterator>
#include <unordered_map>
#include <utility>

namespace cloudsurv::serving {

namespace {

using telemetry::Event;
using telemetry::EventKind;
using telemetry::kSecondsPerDay;
using telemetry::Timestamp;

Timestamp MaturityOf(Timestamp created_at, double observe_days) {
  return created_at + static_cast<Timestamp>(
                          observe_days * static_cast<double>(kSecondsPerDay));
}

/// Result of one shard scoring task.
struct ShardBatchResult {
  std::vector<ScoredDatabase> scored;
  std::vector<uint32_t> latencies_us;
  uint64_t skipped = 0;
  Status status;  // Non-OK only for snapshot materialization failures.
};

}  // namespace

RegionContext RegionContext::FromStore(
    const telemetry::TelemetryStore& store) {
  RegionContext ctx;
  ctx.region_name = store.region_name();
  ctx.utc_offset_minutes = store.utc_offset_minutes();
  ctx.holidays = store.holidays();
  ctx.window_start = store.window_start();
  ctx.window_end = store.window_end();
  return ctx;
}

ScoringEngine::ScoringEngine(RegionContext region, Options options)
    : region_(std::move(region)),
      options_(options),
      ingest_(options.num_shards),
      pool_(options.num_threads, options.queue_capacity),
      shard_logs_(ingest_.num_shards()) {}

ScoringEngine::~ScoringEngine() { pool_.Shutdown(); }

Status ScoringEngine::Ingest(telemetry::Event event) {
  return ingest_.Ingest(std::move(event));
}

void ScoringEngine::AbsorbStagedEvents() {
  std::vector<std::vector<Event>> staged = ingest_.TakeAll();
  for (size_t shard = 0; shard < staged.size(); ++shard) {
    std::vector<Event>& batch = staged[shard];
    if (batch.empty()) continue;
    events_flushed_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (const Event& event : batch) {
      switch (event.kind()) {
        case EventKind::kDatabaseCreated: {
          PendingDatabase pending;
          pending.database_id = event.database_id;
          pending.subscription_id = event.subscription_id;
          pending.matures_at =
              MaturityOf(event.timestamp, options_.observe_days);
          pending.shard = shard;
          tracker_.Add(pending);
          break;
        }
        case EventKind::kDatabaseDropped:
          // A drop before maturity makes the prediction task undefined
          // for this database — stop tracking it.
          tracker_.Cancel(event.database_id, event.timestamp);
          break;
        default:
          break;
      }
    }
    ShardLog& log = shard_logs_[shard];
    log.events.reserve(log.events.size() + batch.size());
    std::move(batch.begin(), batch.end(), std::back_inserter(log.events));
  }
}

Result<std::vector<ScoredDatabase>> ScoringEngine::ScoreDue(
    std::vector<PendingDatabase> due) {
  if (due.empty()) return std::vector<ScoredDatabase>();

  // Group matured databases by owning shard: one snapshot (and one pool
  // task) per shard serves its whole batch.
  std::unordered_map<size_t, std::vector<PendingDatabase>> by_shard;
  for (PendingDatabase& p : due) {
    by_shard[p.shard].push_back(p);
  }

  std::vector<std::future<ShardBatchResult>> futures;
  futures.reserve(by_shard.size());
  for (auto& [shard, batch] : by_shard) {
    // The task reads the shard log concurrently with nothing: the
    // driver thread blocks on all futures below before the next
    // AbsorbStagedEvents() can touch it.
    const std::vector<Event>* shard_events = &shard_logs_[shard].events;
    RegionContext* region = &region_;
    ModelRegistry* registry = &registry_;
    std::vector<PendingDatabase> task_batch = std::move(batch);
    futures.push_back(pool_.Submit(
        [shard_events, region, registry, task_batch = std::move(task_batch),
         this]() -> ShardBatchResult {
          ShardBatchResult result;

          // Pin the model snapshot for the whole batch; a concurrent
          // Publish() swaps later batches, never this one.
          ModelRegistry::ActiveModel active = registry->CurrentWithVersion();
          if (active.model == nullptr) {
            result.status =
                Status::FailedPrecondition("no model published");
            return result;
          }

          telemetry::TelemetryStore snapshot(
              region->region_name, region->utc_offset_minutes,
              region->holidays, region->window_start, region->window_end);
          std::vector<Event> copy(*shard_events);
          snapshot.Reserve(copy.size());
          Status appended = snapshot.AppendEvents(std::move(copy));
          if (!appended.ok()) {
            result.status = appended;
            return result;
          }
          Status finalized = snapshot.Finalize();
          if (!finalized.ok()) {
            result.status = finalized;
            return result;
          }
          snapshots_built_.fetch_add(1, std::memory_order_relaxed);

          result.scored.reserve(task_batch.size());
          result.latencies_us.reserve(task_batch.size());
          for (const PendingDatabase& pending : task_batch) {
            const auto t0 = std::chrono::steady_clock::now();
            auto assessment =
                active.model->Assess(snapshot, pending.database_id);
            const auto t1 = std::chrono::steady_clock::now();
            result.latencies_us.push_back(static_cast<uint32_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(t1 -
                                                                      t0)
                    .count()));
            if (!assessment.ok()) {
              // E.g. dropped exactly inside the window with the drop
              // event racing the maturity cutoff — batch Assess() on
              // the final store fails identically, so skipping keeps
              // the two paths equivalent.
              ++result.skipped;
              continue;
            }
            ScoredDatabase scored;
            scored.database_id = pending.database_id;
            scored.subscription_id = pending.subscription_id;
            scored.matured_at = pending.matures_at;
            scored.model_version = active.version;
            scored.assessment = *std::move(assessment);
            result.scored.push_back(std::move(scored));
          }
          return result;
        }));
  }

  std::vector<ScoredDatabase> all;
  Status first_error = Status::OK();
  for (std::future<ShardBatchResult>& future : futures) {
    ShardBatchResult result = future.get();
    if (!result.status.ok()) {
      if (first_error.ok()) first_error = result.status;
      continue;
    }
    databases_scored_.fetch_add(result.scored.size(),
                                std::memory_order_relaxed);
    databases_skipped_.fetch_add(result.skipped, std::memory_order_relaxed);
    uint64_t confident = 0;
    for (const ScoredDatabase& s : result.scored) {
      if (s.assessment.confident) ++confident;
    }
    databases_confident_.fetch_add(confident, std::memory_order_relaxed);
    RecordLatencies(result.latencies_us);
    std::move(result.scored.begin(), result.scored.end(),
              std::back_inserter(all));
  }
  if (!first_error.ok()) return first_error;

  std::sort(all.begin(), all.end(),
            [](const ScoredDatabase& a, const ScoredDatabase& b) {
              return a.database_id < b.database_id;
            });
  return all;
}

Result<std::vector<ScoredDatabase>> ScoringEngine::Poll(Timestamp now) {
  polls_.fetch_add(1, std::memory_order_relaxed);
  AbsorbStagedEvents();
  return ScoreDue(tracker_.TakeDue(now));
}

Result<std::vector<ScoredDatabase>> ScoringEngine::Drain() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  AbsorbStagedEvents();
  return ScoreDue(tracker_.TakeAll());
}

void ScoringEngine::RecordLatencies(
    const std::vector<uint32_t>& latencies_us) {
  if (latencies_us.empty()) return;
  std::lock_guard<std::mutex> lock(latency_mu_);
  scoring_latencies_us_.insert(scoring_latencies_us_.end(),
                               latencies_us.begin(), latencies_us.end());
}

EngineMetrics ScoringEngine::Metrics() const {
  EngineMetrics m;
  m.events_ingested = ingest_.events_ingested();
  m.events_flushed = events_flushed_.load(std::memory_order_relaxed);
  m.databases_tracked = tracker_.total_added();
  m.databases_cancelled = tracker_.total_cancelled();
  m.databases_scored = databases_scored_.load(std::memory_order_relaxed);
  m.databases_confident =
      databases_confident_.load(std::memory_order_relaxed);
  m.databases_skipped = databases_skipped_.load(std::memory_order_relaxed);
  m.polls = polls_.load(std::memory_order_relaxed);
  m.snapshots_built = snapshots_built_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (!scoring_latencies_us_.empty()) {
      std::vector<uint32_t> sorted = scoring_latencies_us_;
      std::sort(sorted.begin(), sorted.end());
      auto quantile = [&sorted](double q) {
        const size_t idx = static_cast<size_t>(
            q * static_cast<double>(sorted.size() - 1) + 0.5);
        return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
      };
      m.scoring_p50_us = quantile(0.50);
      m.scoring_p99_us = quantile(0.99);
    }
  }
  return m;
}

}  // namespace cloudsurv::serving
