#include "serving/scoring_engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <iterator>
#include <optional>
#include <unordered_map>
#include <utility>

namespace cloudsurv::serving {

namespace {

using telemetry::Event;
using telemetry::EventKind;
using telemetry::kSecondsPerDay;
using telemetry::Timestamp;

Timestamp MaturityOf(Timestamp created_at, double observe_days) {
  return created_at + static_cast<Timestamp>(
                          observe_days * static_cast<double>(kSecondsPerDay));
}

/// Result of one shard scoring task.
struct ShardBatchResult {
  std::vector<ScoredDatabase> scored;
  uint64_t skipped = 0;
  uint64_t fallback = 0;
  uint64_t retries = 0;
  bool deadline_exceeded = false;
  Status status;  // Non-OK only for snapshot/model-availability failures.
};

}  // namespace

const char* HealthStateToString(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kShedding:
      return "shedding";
  }
  return "unknown";
}

RegionContext RegionContext::FromStore(
    const telemetry::TelemetryStore& store) {
  RegionContext ctx;
  ctx.region_name = store.region_name();
  ctx.utc_offset_minutes = store.utc_offset_minutes();
  ctx.holidays = store.holidays();
  ctx.window_start = store.window_start();
  ctx.window_end = store.window_end();
  return ctx;
}

ScoringEngine::EngineSeries ScoringEngine::MakeEngineSeries() {
  // Each engine gets its own labelled series so EngineMetrics stays
  // per-instance even though the registry is process-wide.
  static std::atomic<uint64_t> next_instance{0};
  const obs::LabelSet labels = {
      {"engine",
       std::to_string(next_instance.fetch_add(1,
                                              std::memory_order_relaxed))}};
  obs::Registry& registry = obs::Registry::Default();
  EngineSeries series;
  series.events_flushed = registry.GetCounter(
      "cloudsurv_engine_events_flushed_total",
      "Events moved from the ingest buffer into shard logs", "events",
      labels);
  series.databases_tracked = registry.GetCounter(
      "cloudsurv_engine_databases_tracked_total",
      "Creations registered with the maturity tracker", "databases",
      labels);
  series.databases_cancelled = registry.GetCounter(
      "cloudsurv_engine_databases_cancelled_total",
      "Databases dropped before their observation window elapsed",
      "databases", labels);
  series.databases_scored = registry.GetCounter(
      "cloudsurv_engine_databases_scored_total",
      "Assessments produced by scoring tasks", "databases", labels);
  series.databases_confident = registry.GetCounter(
      "cloudsurv_engine_databases_confident_total",
      "Assessments inside the confident probability bands", "databases",
      labels);
  series.databases_skipped = registry.GetCounter(
      "cloudsurv_engine_databases_skipped_total",
      "Matured databases whose Assess() call failed", "databases",
      labels);
  series.polls = registry.GetCounter("cloudsurv_engine_polls_total",
                                     "Poll()/Drain() cycles", "polls",
                                     labels);
  series.snapshots = registry.GetCounter(
      "cloudsurv_engine_snapshots_total",
      "Per-shard TelemetryStore snapshots materialized", "snapshots",
      labels);
  series.direct_reads = registry.GetCounter(
      "cloudsurv_engine_direct_reads_total",
      "Shard batches scored directly off a readable live store",
      "batches", labels);
  series.fallback_scored = registry.GetCounter(
      "cloudsurv_engine_fallback_scored_total",
      "Assessments served by the weighted-random fallback", "databases",
      labels);
  series.deadline_exceeded = registry.GetCounter(
      "cloudsurv_engine_deadline_exceeded_total",
      "Shard batches whose virtual scoring deadline expired", "batches",
      labels);
  series.retries = registry.GetCounter(
      "cloudsurv_engine_retries_total",
      "Ingest and snapshot retry attempts", "retries", labels);
  auto rejected = [&](const char* reason) {
    obs::LabelSet with_reason = labels;
    with_reason.push_back({"reason", reason});
    return registry.GetCounter(
        "cloudsurv_engine_rejected_total",
        "Ingest attempts the engine rejected, by reason", "events",
        with_reason);
  };
  series.rejected_shed = rejected("shed");
  series.rejected_error = rejected("error");
  series.rejected_invalid = rejected("invalid");
  series.health_state = registry.GetGauge(
      "cloudsurv_engine_health_state",
      "Serving health (0 healthy, 1 degraded, 2 shedding)", "state",
      labels);
  series.health_transitions = registry.GetCounter(
      "cloudsurv_engine_health_transitions_total",
      "Health-state machine transitions", "transitions", labels);
  series.scoring_latency_us = registry.GetHistogram(
      "cloudsurv_engine_scoring_latency_us",
      "Per-database Assess() latency inside worker threads", "us",
      labels);
  return series;
}

ScoringEngine::ScoringEngine(RegionContext region, Options options)
    : region_(std::move(region)),
      options_(options),
      ingest_(options.num_shards, options.fault_injector),
      registry_(options.fault_injector),
      pool_(options.num_threads, options.queue_capacity,
            options.fault_injector),
      shard_logs_(ingest_.num_shards()),
      series_(MakeEngineSeries()) {
  // Hysteresis requires low < high; a degenerate config collapses to a
  // one-event band rather than disabling shedding silently.
  if (options_.shed_high_watermark > 0 &&
      options_.shed_low_watermark >= options_.shed_high_watermark) {
    options_.shed_low_watermark = options_.shed_high_watermark - 1;
  }
  if (options_.fallback_positive_rate >= 0.0) {
    fallback_model_ = ml::WeightedRandomClassifier::FromPositiveRate(
        options_.fallback_positive_rate);
  }
  for (ShardLog& log : shard_logs_) {
    log.store.emplace(region_.region_name, region_.utc_offset_minutes,
                      region_.holidays, region_.window_start,
                      region_.window_end);
  }
  series_.health_state->Set(0.0);
}

ScoringEngine::~ScoringEngine() { pool_.Shutdown(); }

Status ScoringEngine::Ingest(telemetry::Event event) {
  // Fast path: no injector and no watermarks means no retry loop, no
  // shedding check — identical to the pre-fault-layer engine except for
  // the per-reason rejection counter.
  if (options_.fault_injector == nullptr &&
      options_.shed_high_watermark == 0) {
    Status accepted = ingest_.Ingest(std::move(event));
    if (!accepted.ok()) series_.rejected_invalid->Increment();
    return accepted;
  }

  if (options_.shed_high_watermark > 0) {
    if (health() == HealthState::kShedding) {
      series_.rejected_shed->Increment();
      return Status::FailedPrecondition(
          "load shed: ingest backlog over watermark");
    }
    if (ingest_.approx_pending() >= options_.shed_high_watermark) {
      SetHealth(HealthState::kShedding);
      series_.rejected_shed->Increment();
      return Status::FailedPrecondition(
          "load shed: ingest backlog over watermark");
    }
  }

  Status last;
  for (size_t attempt = 0;; ++attempt) {
    last = ingest_.Ingest(event);
    if (last.ok()) return last;
    if (last.code() == StatusCode::kInvalidArgument) {
      // Malformed events are never retryable.
      series_.rejected_invalid->Increment();
      return last;
    }
    if (attempt >= options_.ingest_retries) break;
    series_.retries->Increment();
    fault::SleepFor(RetryBackoffUs(attempt));
  }
  series_.rejected_error->Increment();
  // Retry exhaustion is a degradation signal; the next cycle picks the
  // flag up.
  cycle_dirty_.store(true, std::memory_order_relaxed);
  return last;
}

double ScoringEngine::RetryBackoffUs(size_t attempt) {
  const size_t capped = attempt < 20 ? attempt : 20;
  double backoff = options_.retry_backoff_us *
                   static_cast<double>(uint64_t{1} << capped);
  if (options_.retry_jitter > 0.0) {
    // Jitter is seeded (plan seed, else fallback seed) and salted per
    // draw — varied sleeps, deterministic given the call sequence, and
    // no shared Rng to lock.
    const uint64_t seed = options_.fault_injector != nullptr
                              ? options_.fault_injector->seed()
                              : options_.fallback_seed;
    Rng rng = Rng(seed).Fork(
        jitter_salt_.fetch_add(1, std::memory_order_relaxed));
    backoff *= rng.Uniform(1.0 - options_.retry_jitter,
                           1.0 + options_.retry_jitter);
  }
  return backoff;
}

ScoredDatabase ScoringEngine::FallbackScore(
    const PendingDatabase& pending) const {
  // Forked per database id: the draw depends only on (seed, id), so
  // fallback outputs are independent of scoring order and thread count
  // and bit-match the §4 weighted-random baseline run standalone.
  Rng rng = Rng(options_.fallback_seed).Fork(pending.database_id);
  ScoredDatabase scored;
  scored.database_id = pending.database_id;
  scored.subscription_id = pending.subscription_id;
  scored.matured_at = pending.matures_at;
  scored.model_version = 0;
  scored.fallback = true;
  scored.assessment.predicted_label = fallback_model_.Predict(rng);
  scored.assessment.positive_probability = fallback_model_.positive_rate();
  scored.assessment.confident = false;
  scored.assessment.recommended_pool = core::Pool::kGeneral;
  scored.assessment.model_name = "weighted-random-fallback";
  return scored;
}

void ScoringEngine::SetHealth(HealthState next) {
  const int previous = health_.exchange(static_cast<int>(next),
                                        std::memory_order_relaxed);
  if (previous == static_cast<int>(next)) return;
  series_.health_transitions->Increment();
  series_.health_state->Set(static_cast<double>(static_cast<int>(next)));
}

void ScoringEngine::UpdateHealthAfterCycle(bool dirty) {
  if (options_.shed_high_watermark > 0) {
    const size_t pending = ingest_.approx_pending();
    if (health() == HealthState::kShedding) {
      if (pending <= options_.shed_low_watermark) {
        // Shedding clears into kDegraded, never straight to healthy —
        // the backlog was a degradation event and must age out through
        // the recovery counter like any other.
        SetHealth(HealthState::kDegraded);
        clean_polls_ = 0;
      }
      return;
    }
    if (pending >= options_.shed_high_watermark) {
      SetHealth(HealthState::kShedding);
      return;
    }
  }
  if (dirty) {
    SetHealth(HealthState::kDegraded);
    clean_polls_ = 0;
    return;
  }
  if (health() == HealthState::kDegraded &&
      ++clean_polls_ >= options_.recovery_polls) {
    SetHealth(HealthState::kHealthy);
    clean_polls_ = 0;
  }
}

void ScoringEngine::AbsorbStagedEvents() {
  // Tracker totals are authoritative (Add dedupes, Cancel checks
  // maturity); mirror them onto the registry by delta.
  const uint64_t added_before = tracker_.total_added();
  const uint64_t cancelled_before = tracker_.total_cancelled();
  std::vector<std::vector<Event>> staged = ingest_.TakeAll();
  for (size_t shard = 0; shard < staged.size(); ++shard) {
    std::vector<Event>& batch = staged[shard];
    if (batch.empty()) continue;
    series_.events_flushed->Increment(batch.size());
    for (const Event& event : batch) {
      switch (event.kind()) {
        case EventKind::kDatabaseCreated: {
          PendingDatabase pending;
          pending.database_id = event.database_id;
          pending.subscription_id = event.subscription_id;
          pending.matures_at =
              MaturityOf(event.timestamp, options_.observe_days);
          pending.shard = shard;
          tracker_.Add(pending);
          break;
        }
        case EventKind::kDatabaseDropped:
          // A drop before maturity makes the prediction task undefined
          // for this database — stop tracking it.
          tracker_.Cancel(event.database_id, event.timestamp);
          break;
        default:
          break;
      }
    }
    ShardLog& log = shard_logs_[shard];
    log.store->Reserve(batch.size());
    // Ids were validated at ingest, so the only way a live append can
    // fail is a lifecycle violation — which poisons the store out of
    // readable() and routes the shard to the snapshot path, where
    // Finalize() reports the same violation batch scoring would.
    Status appended = log.store->AppendEvents(std::move(batch));
    if (!appended.ok()) {
      cycle_dirty_.store(true, std::memory_order_relaxed);
    }
  }
  series_.databases_tracked->Increment(tracker_.total_added() -
                                       added_before);
  series_.databases_cancelled->Increment(tracker_.total_cancelled() -
                                         cancelled_before);
}

Result<std::vector<ScoredDatabase>> ScoringEngine::ScoreDue(
    std::vector<PendingDatabase> due) {
  if (due.empty()) return std::vector<ScoredDatabase>();

  // Group matured databases by owning shard: one snapshot (and one pool
  // task) per shard serves its whole batch.
  std::unordered_map<size_t, std::vector<PendingDatabase>> by_shard;
  for (PendingDatabase& p : due) {
    by_shard[p.shard].push_back(p);
  }

  std::vector<std::future<ShardBatchResult>> futures;
  futures.reserve(by_shard.size());
  for (auto& [shard, batch] : by_shard) {
    // The task reads the shard log concurrently with nothing: the
    // driver thread blocks on all futures below before the next
    // AbsorbStagedEvents() can touch it.
    const ShardLog* log = &shard_logs_[shard];
    RegionContext* region = &region_;
    ModelRegistry* registry = &registry_;
    std::vector<PendingDatabase> task_batch = std::move(batch);
    const int64_t shard_key = static_cast<int64_t>(shard);
    futures.push_back(pool_.Submit(
        [log, region, registry, shard_key,
         task_batch = std::move(task_batch), this]() -> ShardBatchResult {
          ShardBatchResult result;
          fault::FaultInjector* injector = options_.fault_injector;
          const bool fallback_enabled =
              options_.fallback_positive_rate >= 0.0;

          // Pin the model snapshot for the whole batch; a concurrent
          // Publish() swaps later batches, never this one. A swap-race
          // fault is evaluated here, per shard, so replay does not
          // depend on which worker thread runs the batch.
          ModelRegistry::ActiveModel active = registry->CurrentWithVersion();
          bool model_available = active.model != nullptr;
          if (model_available && injector != nullptr &&
              injector->Evaluate(fault::Site::kRegistrySwap, shard_key)
                  .swap_race) {
            model_available = false;
          }
          if (!model_available) {
            if (!fallback_enabled) {
              result.status =
                  Status::FailedPrecondition("no model published");
              return result;
            }
            result.scored.reserve(task_batch.size());
            for (const PendingDatabase& pending : task_batch) {
              result.scored.push_back(FallbackScore(pending));
            }
            result.fallback = task_batch.size();
            return result;
          }

          // Pick the store this batch reads. Direct-read fast path:
          // ordered streaming ingest keeps the live shard store
          // readable(), so the batch scores straight off its columnar
          // state — no event copy, no Finalize() barrier. A configured
          // injector always takes the snapshot path below, preserving
          // the fault::Site::kSnapshotBuild injection point fault
          // plans target.
          const telemetry::TelemetryStore* read_store = nullptr;
          std::optional<telemetry::TelemetryStore> snapshot;
          if (injector == nullptr && log->store->readable()) {
            read_store = &*log->store;
            series_.direct_reads->Increment();
          } else {
            // Snapshot materialization from the shard's event log,
            // with bounded retries around injected allocation/io
            // failures.
            std::vector<Event> base;
            base.reserve(log->store->num_events());
            for (const Event& event : log->store->events()) {
              base.push_back(event);
            }
            Status snap_status;
            for (size_t attempt = 0;
                 attempt <= options_.snapshot_retries; ++attempt) {
              if (attempt > 0) {
                ++result.retries;
                fault::SleepFor(RetryBackoffUs(attempt - 1));
              }
              if (injector != nullptr) {
                const fault::Outcome outcome = injector->Evaluate(
                    fault::Site::kSnapshotBuild, shard_key);
                fault::SleepFor(outcome.delay_us + outcome.stall_us);
                if (outcome.fail) {
                  snap_status =
                      outcome.io
                          ? Status::IOError(
                                "injected io failure building snapshot")
                          : Status::Internal(
                                "injected allocation failure building "
                                "snapshot");
                  continue;
                }
              }
              telemetry::TelemetryStore candidate(
                  region->region_name, region->utc_offset_minutes,
                  region->holidays, region->window_start,
                  region->window_end);
              std::vector<Event> copy(base);
              candidate.Reserve(copy.size());
              snap_status = candidate.AppendEvents(std::move(copy));
              if (!snap_status.ok()) continue;
              snap_status = candidate.Finalize();
              if (!snap_status.ok()) continue;
              snapshot.emplace(std::move(candidate));
              break;
            }
            if (!snapshot.has_value()) {
              if (fallback_enabled) {
                result.scored.reserve(task_batch.size());
                for (const PendingDatabase& pending : task_batch) {
                  result.scored.push_back(FallbackScore(pending));
                }
                result.fallback = task_batch.size();
                return result;
              }
              // No fallback: the batch is reported skipped (counted,
              // not silently dropped) and the poll surfaces the error.
              result.skipped = task_batch.size();
              result.status = snap_status;
              return result;
            }
            series_.snapshots->Increment();
            read_store = &*snapshot;
          }

          if (injector == nullptr && options_.batch_deadline_us <= 0.0) {
            // Batched fast path: with no per-database injection points
            // or virtual-time deadline to honour, the whole shard batch
            // goes through AssessMany — rows grouped per model slot and
            // scored by the compiled FlatForest in blocks. Assessments
            // are bit-identical to the per-id loop below; nullopt marks
            // exactly the ids whose per-id Assess would fail.
            std::vector<telemetry::DatabaseId> ids;
            ids.reserve(task_batch.size());
            for (const PendingDatabase& pending : task_batch) {
              ids.push_back(pending.database_id);
            }
            const auto batch_start = std::chrono::steady_clock::now();
            ml::FlatForest::BatchOptions batch_opts;
            batch_opts.block_rows = options_.inference_block_rows;
            batch_opts.traversal = options_.inference_traversal;
            auto assessments =
                active.model->AssessMany(*read_store, ids, batch_opts);
            const double batch_us =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - batch_start)
                    .count();
            if (!assessments.ok()) {
              result.skipped = task_batch.size();
              result.status = assessments.status();
              return result;
            }
            // Record the amortized per-database latency so the
            // histogram keeps its per-assessment semantics (one sample
            // per scored database, as on the per-row path).
            const double per_db_us =
                batch_us / static_cast<double>(task_batch.size());
            result.scored.reserve(task_batch.size());
            for (size_t i = 0; i < task_batch.size(); ++i) {
              series_.scoring_latency_us->Observe(per_db_us);
              if (!(*assessments)[i].has_value()) {
                ++result.skipped;
                continue;
              }
              ScoredDatabase scored;
              scored.database_id = task_batch[i].database_id;
              scored.subscription_id = task_batch[i].subscription_id;
              scored.matured_at = task_batch[i].matures_at;
              scored.model_version = active.version;
              scored.assessment = *std::move((*assessments)[i]);
              result.scored.push_back(std::move(scored));
            }
            return result;
          }

          // Per-database scoring against a virtual-time deadline. The
          // virtual clock advances by injected delays plus a fixed cost
          // per assessment — never by wall time — so deadline behaviour
          // is bit-reproducible across machines and thread counts.
          double virtual_us = 0.0;
          bool past_deadline = false;
          result.scored.reserve(task_batch.size());
          for (const PendingDatabase& pending : task_batch) {
            if (injector != nullptr) {
              const fault::Outcome outcome = injector->Evaluate(
                  fault::Site::kScoreAssess, shard_key);
              fault::SleepFor(outcome.delay_us + outcome.stall_us);
              virtual_us += outcome.delay_us + outcome.stall_us;
            }
            if (!past_deadline && options_.batch_deadline_us > 0.0 &&
                virtual_us > options_.batch_deadline_us) {
              past_deadline = true;
              result.deadline_exceeded = true;
            }
            if (past_deadline) {
              if (fallback_enabled) {
                result.scored.push_back(FallbackScore(pending));
                ++result.fallback;
              } else {
                ++result.skipped;
              }
              continue;
            }
            // ScopedTimer records into the engine's latency histogram;
            // the histogram is thread-safe so tasks observe directly.
            obs::ScopedTimer timer(series_.scoring_latency_us);
            auto assessment =
                active.model->Assess(*read_store, pending.database_id);
            timer.Stop();
            virtual_us += options_.assess_virtual_cost_us;
            if (!assessment.ok()) {
              // E.g. dropped exactly inside the window with the drop
              // event racing the maturity cutoff — batch Assess() on
              // the final store fails identically, so skipping keeps
              // the two paths equivalent.
              ++result.skipped;
              continue;
            }
            ScoredDatabase scored;
            scored.database_id = pending.database_id;
            scored.subscription_id = pending.subscription_id;
            scored.matured_at = pending.matures_at;
            scored.model_version = active.version;
            scored.assessment = *std::move(assessment);
            result.scored.push_back(std::move(scored));
          }
          return result;
        }));
  }

  std::vector<ScoredDatabase> all;
  Status first_error = Status::OK();
  for (std::future<ShardBatchResult>& future : futures) {
    ShardBatchResult result = future.get();
    series_.retries->Increment(result.retries);
    if (result.deadline_exceeded) {
      series_.deadline_exceeded->Increment();
      cycle_dirty_.store(true, std::memory_order_relaxed);
    }
    if (!result.status.ok()) {
      series_.databases_skipped->Increment(result.skipped);
      cycle_dirty_.store(true, std::memory_order_relaxed);
      if (first_error.ok()) first_error = result.status;
      continue;
    }
    series_.databases_scored->Increment(result.scored.size() -
                                        result.fallback);
    series_.databases_skipped->Increment(result.skipped);
    if (result.fallback > 0) {
      series_.fallback_scored->Increment(result.fallback);
      cycle_dirty_.store(true, std::memory_order_relaxed);
    }
    uint64_t confident = 0;
    for (const ScoredDatabase& s : result.scored) {
      if (s.assessment.confident) ++confident;
    }
    series_.databases_confident->Increment(confident);
    std::move(result.scored.begin(), result.scored.end(),
              std::back_inserter(all));
  }
  if (!first_error.ok()) return first_error;

  std::sort(all.begin(), all.end(),
            [](const ScoredDatabase& a, const ScoredDatabase& b) {
              return a.database_id < b.database_id;
            });
  return all;
}

Result<std::vector<ScoredDatabase>> ScoringEngine::RunCycle(
    std::vector<PendingDatabase> due) {
  Result<std::vector<ScoredDatabase>> scored = ScoreDue(std::move(due));
  // Consume-and-reset: a dirty flag raised between cycles (e.g. ingest
  // retry exhaustion on a producer thread) degrades this cycle.
  const bool dirty =
      cycle_dirty_.exchange(false, std::memory_order_relaxed) ||
      !scored.ok();
  UpdateHealthAfterCycle(dirty);
  return scored;
}

Result<std::vector<ScoredDatabase>> ScoringEngine::Poll(Timestamp now) {
  series_.polls->Increment();
  if (options_.fault_injector != nullptr) {
    // A skewed poll clock. Negative skew (clock behind) is output-
    // neutral — databases just score on a later poll; positive skew can
    // score a window before all its events arrived, which is exactly
    // the bug class the plan is trying to reproduce.
    now += static_cast<Timestamp>(
        options_.fault_injector->Evaluate(fault::Site::kEngineClock)
            .skew_s);
  }
  AbsorbStagedEvents();
  return RunCycle(tracker_.TakeDue(now));
}

Result<std::vector<ScoredDatabase>> ScoringEngine::Drain() {
  series_.polls->Increment();
  AbsorbStagedEvents();
  return RunCycle(tracker_.TakeAll());
}

EngineMetrics ScoringEngine::Metrics() const {
  EngineMetrics m;
  m.events_ingested = ingest_.events_ingested();
  m.events_flushed = series_.events_flushed->Value();
  m.databases_tracked = tracker_.total_added();
  m.databases_cancelled = tracker_.total_cancelled();
  m.databases_scored = series_.databases_scored->Value();
  m.databases_confident = series_.databases_confident->Value();
  m.databases_skipped = series_.databases_skipped->Value();
  m.polls = series_.polls->Value();
  m.snapshots_built = series_.snapshots->Value();
  m.direct_read_batches = series_.direct_reads->Value();
  m.databases_fallback = series_.fallback_scored->Value();
  m.deadline_exceeded = series_.deadline_exceeded->Value();
  m.retries = series_.retries->Value();
  m.rejected_shed = series_.rejected_shed->Value();
  m.rejected_error = series_.rejected_error->Value();
  m.rejected_invalid = series_.rejected_invalid->Value();
  m.health = health();
  m.health_transitions = series_.health_transitions->Value();
  // Histogram quantiles: bucket-interpolated estimates, and exactly 0
  // when no assessment has run yet (an empty histogram has well-defined
  // quantiles — no empty-reservoir garbage).
  m.scoring_p50_us = series_.scoring_latency_us->Quantile(0.50);
  m.scoring_p99_us = series_.scoring_latency_us->Quantile(0.99);
  return m;
}

}  // namespace cloudsurv::serving
