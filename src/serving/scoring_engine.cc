#include "serving/scoring_engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <iterator>
#include <unordered_map>
#include <utility>

namespace cloudsurv::serving {

namespace {

using telemetry::Event;
using telemetry::EventKind;
using telemetry::kSecondsPerDay;
using telemetry::Timestamp;

Timestamp MaturityOf(Timestamp created_at, double observe_days) {
  return created_at + static_cast<Timestamp>(
                          observe_days * static_cast<double>(kSecondsPerDay));
}

/// Result of one shard scoring task.
struct ShardBatchResult {
  std::vector<ScoredDatabase> scored;
  uint64_t skipped = 0;
  Status status;  // Non-OK only for snapshot materialization failures.
};

}  // namespace

RegionContext RegionContext::FromStore(
    const telemetry::TelemetryStore& store) {
  RegionContext ctx;
  ctx.region_name = store.region_name();
  ctx.utc_offset_minutes = store.utc_offset_minutes();
  ctx.holidays = store.holidays();
  ctx.window_start = store.window_start();
  ctx.window_end = store.window_end();
  return ctx;
}

ScoringEngine::EngineSeries ScoringEngine::MakeEngineSeries() {
  // Each engine gets its own labelled series so EngineMetrics stays
  // per-instance even though the registry is process-wide.
  static std::atomic<uint64_t> next_instance{0};
  const obs::LabelSet labels = {
      {"engine",
       std::to_string(next_instance.fetch_add(1,
                                              std::memory_order_relaxed))}};
  obs::Registry& registry = obs::Registry::Default();
  EngineSeries series;
  series.events_flushed = registry.GetCounter(
      "cloudsurv_engine_events_flushed_total",
      "Events moved from the ingest buffer into shard logs", "events",
      labels);
  series.databases_tracked = registry.GetCounter(
      "cloudsurv_engine_databases_tracked_total",
      "Creations registered with the maturity tracker", "databases",
      labels);
  series.databases_cancelled = registry.GetCounter(
      "cloudsurv_engine_databases_cancelled_total",
      "Databases dropped before their observation window elapsed",
      "databases", labels);
  series.databases_scored = registry.GetCounter(
      "cloudsurv_engine_databases_scored_total",
      "Assessments produced by scoring tasks", "databases", labels);
  series.databases_confident = registry.GetCounter(
      "cloudsurv_engine_databases_confident_total",
      "Assessments inside the confident probability bands", "databases",
      labels);
  series.databases_skipped = registry.GetCounter(
      "cloudsurv_engine_databases_skipped_total",
      "Matured databases whose Assess() call failed", "databases",
      labels);
  series.polls = registry.GetCounter("cloudsurv_engine_polls_total",
                                     "Poll()/Drain() cycles", "polls",
                                     labels);
  series.snapshots = registry.GetCounter(
      "cloudsurv_engine_snapshots_total",
      "Per-shard TelemetryStore snapshots materialized", "snapshots",
      labels);
  series.scoring_latency_us = registry.GetHistogram(
      "cloudsurv_engine_scoring_latency_us",
      "Per-database Assess() latency inside worker threads", "us",
      labels);
  return series;
}

ScoringEngine::ScoringEngine(RegionContext region, Options options)
    : region_(std::move(region)),
      options_(options),
      ingest_(options.num_shards),
      pool_(options.num_threads, options.queue_capacity),
      shard_logs_(ingest_.num_shards()),
      series_(MakeEngineSeries()) {}

ScoringEngine::~ScoringEngine() { pool_.Shutdown(); }

Status ScoringEngine::Ingest(telemetry::Event event) {
  return ingest_.Ingest(std::move(event));
}

void ScoringEngine::AbsorbStagedEvents() {
  // Tracker totals are authoritative (Add dedupes, Cancel checks
  // maturity); mirror them onto the registry by delta.
  const uint64_t added_before = tracker_.total_added();
  const uint64_t cancelled_before = tracker_.total_cancelled();
  std::vector<std::vector<Event>> staged = ingest_.TakeAll();
  for (size_t shard = 0; shard < staged.size(); ++shard) {
    std::vector<Event>& batch = staged[shard];
    if (batch.empty()) continue;
    series_.events_flushed->Increment(batch.size());
    for (const Event& event : batch) {
      switch (event.kind()) {
        case EventKind::kDatabaseCreated: {
          PendingDatabase pending;
          pending.database_id = event.database_id;
          pending.subscription_id = event.subscription_id;
          pending.matures_at =
              MaturityOf(event.timestamp, options_.observe_days);
          pending.shard = shard;
          tracker_.Add(pending);
          break;
        }
        case EventKind::kDatabaseDropped:
          // A drop before maturity makes the prediction task undefined
          // for this database — stop tracking it.
          tracker_.Cancel(event.database_id, event.timestamp);
          break;
        default:
          break;
      }
    }
    ShardLog& log = shard_logs_[shard];
    log.events.reserve(log.events.size() + batch.size());
    std::move(batch.begin(), batch.end(), std::back_inserter(log.events));
  }
  series_.databases_tracked->Increment(tracker_.total_added() -
                                       added_before);
  series_.databases_cancelled->Increment(tracker_.total_cancelled() -
                                         cancelled_before);
}

Result<std::vector<ScoredDatabase>> ScoringEngine::ScoreDue(
    std::vector<PendingDatabase> due) {
  if (due.empty()) return std::vector<ScoredDatabase>();

  // Group matured databases by owning shard: one snapshot (and one pool
  // task) per shard serves its whole batch.
  std::unordered_map<size_t, std::vector<PendingDatabase>> by_shard;
  for (PendingDatabase& p : due) {
    by_shard[p.shard].push_back(p);
  }

  std::vector<std::future<ShardBatchResult>> futures;
  futures.reserve(by_shard.size());
  for (auto& [shard, batch] : by_shard) {
    // The task reads the shard log concurrently with nothing: the
    // driver thread blocks on all futures below before the next
    // AbsorbStagedEvents() can touch it.
    const std::vector<Event>* shard_events = &shard_logs_[shard].events;
    RegionContext* region = &region_;
    ModelRegistry* registry = &registry_;
    std::vector<PendingDatabase> task_batch = std::move(batch);
    futures.push_back(pool_.Submit(
        [shard_events, region, registry, task_batch = std::move(task_batch),
         this]() -> ShardBatchResult {
          ShardBatchResult result;

          // Pin the model snapshot for the whole batch; a concurrent
          // Publish() swaps later batches, never this one.
          ModelRegistry::ActiveModel active = registry->CurrentWithVersion();
          if (active.model == nullptr) {
            result.status =
                Status::FailedPrecondition("no model published");
            return result;
          }

          telemetry::TelemetryStore snapshot(
              region->region_name, region->utc_offset_minutes,
              region->holidays, region->window_start, region->window_end);
          std::vector<Event> copy(*shard_events);
          snapshot.Reserve(copy.size());
          Status appended = snapshot.AppendEvents(std::move(copy));
          if (!appended.ok()) {
            result.status = appended;
            return result;
          }
          Status finalized = snapshot.Finalize();
          if (!finalized.ok()) {
            result.status = finalized;
            return result;
          }
          series_.snapshots->Increment();

          result.scored.reserve(task_batch.size());
          for (const PendingDatabase& pending : task_batch) {
            // ScopedTimer records into the engine's latency histogram;
            // the histogram is thread-safe so tasks observe directly.
            obs::ScopedTimer timer(series_.scoring_latency_us);
            auto assessment =
                active.model->Assess(snapshot, pending.database_id);
            timer.Stop();
            if (!assessment.ok()) {
              // E.g. dropped exactly inside the window with the drop
              // event racing the maturity cutoff — batch Assess() on
              // the final store fails identically, so skipping keeps
              // the two paths equivalent.
              ++result.skipped;
              continue;
            }
            ScoredDatabase scored;
            scored.database_id = pending.database_id;
            scored.subscription_id = pending.subscription_id;
            scored.matured_at = pending.matures_at;
            scored.model_version = active.version;
            scored.assessment = *std::move(assessment);
            result.scored.push_back(std::move(scored));
          }
          return result;
        }));
  }

  std::vector<ScoredDatabase> all;
  Status first_error = Status::OK();
  for (std::future<ShardBatchResult>& future : futures) {
    ShardBatchResult result = future.get();
    if (!result.status.ok()) {
      if (first_error.ok()) first_error = result.status;
      continue;
    }
    series_.databases_scored->Increment(result.scored.size());
    series_.databases_skipped->Increment(result.skipped);
    uint64_t confident = 0;
    for (const ScoredDatabase& s : result.scored) {
      if (s.assessment.confident) ++confident;
    }
    series_.databases_confident->Increment(confident);
    std::move(result.scored.begin(), result.scored.end(),
              std::back_inserter(all));
  }
  if (!first_error.ok()) return first_error;

  std::sort(all.begin(), all.end(),
            [](const ScoredDatabase& a, const ScoredDatabase& b) {
              return a.database_id < b.database_id;
            });
  return all;
}

Result<std::vector<ScoredDatabase>> ScoringEngine::Poll(Timestamp now) {
  series_.polls->Increment();
  AbsorbStagedEvents();
  return ScoreDue(tracker_.TakeDue(now));
}

Result<std::vector<ScoredDatabase>> ScoringEngine::Drain() {
  series_.polls->Increment();
  AbsorbStagedEvents();
  return ScoreDue(tracker_.TakeAll());
}

EngineMetrics ScoringEngine::Metrics() const {
  EngineMetrics m;
  m.events_ingested = ingest_.events_ingested();
  m.events_flushed = series_.events_flushed->Value();
  m.databases_tracked = tracker_.total_added();
  m.databases_cancelled = tracker_.total_cancelled();
  m.databases_scored = series_.databases_scored->Value();
  m.databases_confident = series_.databases_confident->Value();
  m.databases_skipped = series_.databases_skipped->Value();
  m.polls = series_.polls->Value();
  m.snapshots_built = series_.snapshots->Value();
  // Histogram quantiles: bucket-interpolated estimates, and exactly 0
  // when no assessment has run yet (an empty histogram has well-defined
  // quantiles — no empty-reservoir garbage).
  m.scoring_p50_us = series_.scoring_latency_us->Quantile(0.50);
  m.scoring_p99_us = series_.scoring_latency_us->Quantile(0.99);
  return m;
}

}  // namespace cloudsurv::serving
