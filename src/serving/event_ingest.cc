#include "serving/event_ingest.h"

#include <algorithm>
#include <utility>

namespace cloudsurv::serving {

namespace {

// splitmix64 finalizer — subscription ids are dense small integers, so
// mix them before taking the shard modulus to avoid striping artifacts.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

EventIngestBuffer::EventIngestBuffer(size_t num_shards,
                                     fault::FaultInjector* fault_injector)
    : fault_injector_(fault_injector) {
  const size_t n = std::max<size_t>(1, num_shards);
  obs::Registry& registry = obs::Registry::Default();
  rejected_total_ = registry.GetCounter(
      "cloudsurv_ingest_rejected_total",
      "Events rejected at ingest (invalid database/subscription id)",
      "events");
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    const obs::LabelSet labels = {{"shard", std::to_string(i)}};
    shard->events_total = registry.GetCounter(
        "cloudsurv_ingest_events_total", "Events accepted by Ingest()",
        "events", labels);
    shard->pending_events = registry.GetGauge(
        "cloudsurv_ingest_pending_events",
        "Events staged in the shard awaiting the next poll", "events",
        labels);
    shards_.push_back(std::move(shard));
  }
}

size_t EventIngestBuffer::ShardOf(
    telemetry::SubscriptionId subscription_id) const {
  return static_cast<size_t>(MixId(subscription_id) % shards_.size());
}

Status EventIngestBuffer::Ingest(telemetry::Event event) {
  if (event.database_id == telemetry::kInvalidId) {
    rejected_total_->Increment();
    return Status::InvalidArgument("event has invalid database id");
  }
  if (event.subscription_id == telemetry::kInvalidId) {
    rejected_total_->Increment();
    return Status::InvalidArgument("event has invalid subscription id");
  }
  const size_t shard_index = ShardOf(event.subscription_id);
  Shard& shard = *shards_[shard_index];
  fault::Outcome fault_outcome;
  if (fault_injector_ != nullptr) {
    fault_outcome = fault_injector_->Evaluate(
        fault::Site::kIngestShard, static_cast<int64_t>(shard_index));
    // Delay before the lock: a slow producer, not a held-up shard.
    fault::SleepFor(fault_outcome.delay_us);
    if (fault_outcome.fail) {
      return Status::Internal("injected allocation failure at ingest");
    }
    if (fault_outcome.io) {
      return Status::IOError("injected io failure at ingest");
    }
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Stall while holding the shard lock so concurrent producers on the
    // same shard (and the engine's TakeShard) observe the contention.
    fault::SleepFor(fault_outcome.stall_us);
    shard.events.push_back(std::move(event));
  }
  shard.events_total->Increment();
  shard.pending_events->Add(1.0);
  events_ingested_.fetch_add(1, std::memory_order_relaxed);
  pending_approx_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<telemetry::Event> EventIngestBuffer::TakeShard(size_t shard) {
  std::vector<telemetry::Event> out;
  Shard& s = *shards_[shard % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    out.swap(s.events);
  }
  if (!out.empty()) {
    s.pending_events->Add(-static_cast<double>(out.size()));
    pending_approx_.fetch_sub(out.size(), std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::vector<telemetry::Event>> EventIngestBuffer::TakeAll() {
  std::vector<std::vector<telemetry::Event>> out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    out.push_back(TakeShard(i));
  }
  return out;
}

size_t EventIngestBuffer::pending_events() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->events.size();
  }
  return total;
}

}  // namespace cloudsurv::serving
