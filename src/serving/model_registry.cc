#include "serving/model_registry.h"

#include <utility>

namespace cloudsurv::serving {

Result<uint64_t> ModelRegistry::Publish(std::string name, ModelPtr model) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot publish a null model");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (fault_injector_ != nullptr) {
    // Sleep inside the lock: the point is to widen the swap window so
    // readers race against a slow publish. swap_race outcomes are
    // evaluated by the scoring engine per shard, not here.
    const fault::Outcome outcome =
        fault_injector_->Evaluate(fault::Site::kRegistryPublish);
    fault::SleepFor(outcome.delay_us + outcome.stall_us);
  }
  Entry entry;
  entry.version = static_cast<uint64_t>(entries_.size()) + 1;
  entry.name = std::move(name);
  entry.model = std::move(model);
  entries_.push_back(std::move(entry));
  active_index_ = entries_.size() - 1;
  return entries_.back().version;
}

Result<uint64_t> ModelRegistry::Publish(
    std::string name, std::shared_ptr<core::LongevityService> model,
    bool compile_inference) {
  if (model == nullptr) {
    return Status::InvalidArgument("cannot publish a null model");
  }
  if (compile_inference) {
    // Compile outside the registry lock, before the snapshot becomes
    // visible: readers pin either the previous version or this one
    // fully compiled — never a half-built layout.
    CLOUDSURV_RETURN_NOT_OK(model->CompileForInference());
  }
  return Publish(std::move(name), ModelPtr(std::move(model)));
}

Result<uint64_t> ModelRegistry::PublishFromFile(
    std::string name, const std::string& path,
    const artifact::ArtifactReader::Options& reader_options) {
  // Load and validate entirely outside the lock; a bad file never
  // perturbs the registry. The loaded service arrives already compiled
  // (views into the artifact), so publish without recompiling.
  CLOUDSURV_ASSIGN_OR_RETURN(
      core::LongevityService service,
      core::LongevityService::LoadArtifact(path, reader_options));
  return Publish(std::move(name),
                 ModelPtr(std::make_shared<const core::LongevityService>(
                     std::move(service))));
}

Status ModelRegistry::PersistActive(const std::string& path) const {
  const ModelPtr model = Current();
  if (model == nullptr) {
    return Status::FailedPrecondition(
        "registry has no active model to persist");
  }
  return model->SaveArtifact(path);
}

ModelRegistry::ModelPtr ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return nullptr;
  return entries_[active_index_].model;
}

ModelRegistry::ActiveModel ModelRegistry::CurrentWithVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  ActiveModel active;
  if (!entries_.empty()) {
    active.version = entries_[active_index_].version;
    active.model = entries_[active_index_].model;
  }
  return active;
}

uint64_t ModelRegistry::current_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? 0 : entries_[active_index_].version;
}

Result<ModelRegistry::Entry> ModelRegistry::Get(uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (version == 0 || version > entries_.size()) {
    return Status::NotFound("no model version " + std::to_string(version));
  }
  return entries_[version - 1];
}

Status ModelRegistry::Activate(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (version == 0 || version > entries_.size()) {
    return Status::NotFound("no model version " + std::to_string(version));
  }
  active_index_ = static_cast<size_t>(version - 1);
  return Status::OK();
}

size_t ModelRegistry::num_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<ModelRegistry::Entry> ModelRegistry::ListVersions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

}  // namespace cloudsurv::serving
