#include "serving/maturity_tracker.h"

#include <utility>

namespace cloudsurv::serving {

void MaturityTracker::Add(PendingDatabase pending) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      live_.try_emplace(pending.database_id, pending.matures_at);
  (void)it;
  if (!inserted) return;
  heap_.push(std::move(pending));
  ++total_added_;
}

bool MaturityTracker::Cancel(telemetry::DatabaseId id,
                             telemetry::Timestamp dropped_at) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end() || dropped_at >= it->second) return false;
  live_.erase(it);
  ++total_cancelled_;
  return true;
}

std::vector<PendingDatabase> MaturityTracker::TakeDue(
    telemetry::Timestamp now) {
  std::vector<PendingDatabase> due;
  std::lock_guard<std::mutex> lock(mu_);
  while (!heap_.empty() && heap_.top().matures_at <= now) {
    PendingDatabase top = heap_.top();
    heap_.pop();
    auto it = live_.find(top.database_id);
    if (it == live_.end()) continue;  // cancelled; skip lazily
    live_.erase(it);
    due.push_back(top);
  }
  return due;
}

std::vector<PendingDatabase> MaturityTracker::TakeAll() {
  std::vector<PendingDatabase> due;
  std::lock_guard<std::mutex> lock(mu_);
  while (!heap_.empty()) {
    PendingDatabase top = heap_.top();
    heap_.pop();
    auto it = live_.find(top.database_id);
    if (it == live_.end()) continue;
    live_.erase(it);
    due.push_back(top);
  }
  return due;
}

size_t MaturityTracker::pending_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

uint64_t MaturityTracker::total_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_added_;
}

uint64_t MaturityTracker::total_cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_cancelled_;
}

}  // namespace cloudsurv::serving
