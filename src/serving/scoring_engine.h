#ifndef CLOUDSURV_SERVING_SCORING_ENGINE_H_
#define CLOUDSURV_SERVING_SCORING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/service.h"
#include "fault/fault.h"
#include "ml/baseline.h"
#include "obs/metrics.h"
#include "serving/event_ingest.h"
#include "serving/maturity_tracker.h"
#include "serving/model_registry.h"
#include "common/thread_pool.h"
#include "telemetry/store.h"

namespace cloudsurv::serving {

/// Region metadata a snapshot TelemetryStore needs (calendar features
/// read it). Copy it from the region's config or any store of the
/// region.
struct RegionContext {
  std::string region_name;
  int utc_offset_minutes = 0;
  telemetry::HolidayCalendar holidays;
  telemetry::Timestamp window_start = 0;
  telemetry::Timestamp window_end = 0;

  static RegionContext FromStore(const telemetry::TelemetryStore& store);
};

/// One online assessment produced by the engine.
struct ScoredDatabase {
  telemetry::DatabaseId database_id = telemetry::kInvalidId;
  telemetry::SubscriptionId subscription_id = telemetry::kInvalidId;
  /// Prediction time Tp = created_at + observe window.
  telemetry::Timestamp matured_at = 0;
  /// Registry version of the model that produced the assessment
  /// (0 for fallback assessments).
  uint64_t model_version = 0;
  /// True iff the forest model was unavailable (or the batch deadline
  /// expired) and the §4 weighted-random baseline scored this database
  /// instead. Fallback assessments are never confident.
  bool fallback = false;
  core::LongevityService::Assessment assessment;
};

/// Serving health, coarsest first. See docs/operations.md for the full
/// state machine and the triage playbook attached to each state.
enum class HealthState {
  kHealthy = 0,   ///< Forest-model scoring, no recent degradation.
  kDegraded = 1,  ///< Recent fallback scoring, deadline miss or retry
                  ///< exhaustion; recovers after `recovery_polls` clean
                  ///< polls.
  kShedding = 2,  ///< Ingest backlog crossed the high watermark; new
                  ///< events are rejected until it drains below the low
                  ///< watermark.
};

/// Stable name of a health state ("healthy", "degraded", "shedding").
const char* HealthStateToString(HealthState state);

/// Point-in-time engine counters. Latency quantiles cover the per-
/// database Assess() call (feature extraction + forest inference)
/// inside worker threads, in microseconds.
///
/// This struct is a *view*: the authoritative state lives in the
/// process-wide obs::Registry as `cloudsurv_engine_*` series labelled
/// with this engine's instance id (so multiple engines in one process
/// stay distinguishable, and `Metrics()` keeps per-engine semantics).
/// Quantiles are estimated from the registry histogram's log-scale
/// buckets and are 0 when no assessment has been recorded.
struct EngineMetrics {
  uint64_t events_ingested = 0;
  uint64_t events_flushed = 0;
  uint64_t databases_tracked = 0;   ///< Creations registered for scoring.
  uint64_t databases_cancelled = 0; ///< Dropped before maturing.
  uint64_t databases_scored = 0;
  uint64_t databases_confident = 0;
  uint64_t databases_skipped = 0;   ///< Matured but Assess() failed.
  uint64_t polls = 0;
  uint64_t snapshots_built = 0;   ///< Copy+Finalize snapshot fallbacks.
  uint64_t direct_read_batches = 0; ///< Batches scored off live stores.
  uint64_t databases_fallback = 0;  ///< Scored by the baseline fallback.
  uint64_t deadline_exceeded = 0;   ///< Shard batches past the deadline.
  uint64_t retries = 0;             ///< Ingest/snapshot retry attempts.
  uint64_t rejected_shed = 0;       ///< Ingests rejected while shedding.
  uint64_t rejected_error = 0;      ///< Ingests rejected, retries spent.
  uint64_t rejected_invalid = 0;    ///< Ingests rejected (bad ids).
  HealthState health = HealthState::kHealthy;
  uint64_t health_transitions = 0;
  double scoring_p50_us = 0.0;
  double scoring_p99_us = 0.0;

  double confident_fraction() const {
    return databases_scored == 0
               ? 0.0
               : static_cast<double>(databases_confident) /
                     static_cast<double>(databases_scored);
  }
};

/// Online scoring engine: the serving-path counterpart of the one-shot
/// LongevityService::Assess() batch flow.
///
/// Data flow per poll cycle:
///   producers --Ingest()--> EventIngestBuffer (mutex-striped shards,
///                           keyed by subscription)
///   Poll(now) drains the buffer into per-shard live TelemetryStores,
///   registers creations with the MaturityTracker (min-heap on
///   created_at + observe_days) and cancels databases dropped before
///   maturing; then every shard holding newly matured databases gets
///   one ThreadPool task that scores its due databases against the
///   registry's current model snapshot. When no fault injector is
///   configured and the shard's live store is still readable()
///   (ordered streaming ingest), the task reads the live columnar
///   store directly — no event copy, no Finalize() barrier. Otherwise
///   it falls back to materializing a finalized snapshot store from
///   the shard's event log (the path fault plans target via
///   fault::Site::kSnapshotBuild).
///
/// Correctness: features only read telemetry at or before Tp and only
/// from the scored database's own subscription, and a shard owns every
/// event of its subscriptions — so a shard snapshot taken at any
/// now >= Tp yields bit-identical assessments to batch Assess() on the
/// full final store, regardless of thread count or poll cadence.
///
/// Threading contract: Ingest() is safe from any number of threads;
/// Poll()/Drain() must be called from one driver thread at a time.
/// ModelRegistry::Publish()/Activate() may race with everything
/// (hot-swap): each scoring task pins the model snapshot it starts
/// with, so swaps never tear a batch.
class ScoringEngine {
 public:
  struct Options {
    size_t num_shards = 16;
    size_t num_threads = 4;
    /// Bound on queued scoring tasks; Poll() blocks (backpressure) when
    /// the pool falls behind.
    size_t queue_capacity = 64;
    /// Observation span x in days; must match the published models'
    /// observe_days for assessments to be meaningful.
    double observe_days = 2.0;
    /// Rows per FlatForest traversal block when a shard batch takes the
    /// batched inference path (`LongevityService::AssessMany`); 0 uses
    /// the compiled forest's autotuned block size. The batched path
    /// engages only when no fault injector and no batch deadline are
    /// configured — per-database injection points and virtual-time
    /// accounting require the per-row loop.
    size_t inference_block_rows = 0;
    /// Traversal kernel for the batched inference path: kAuto picks
    /// the AVX2 multi-row kernel when available (else scalar); an
    /// explicit kAvx2 on a build/CPU without it fails the batch, which
    /// surfaces as skipped databases. All kernels are bit-identical.
    ml::simd::TraversalKind inference_traversal =
        ml::simd::TraversalKind::kAuto;

    // --- Fault injection & graceful degradation -------------------
    // Every knob below defaults to "off": with the defaults the engine
    // behaves exactly like the pre-fault-layer engine. The knob table
    // in docs/operations.md documents each one and is kept in sync by
    // tools/check_docs.sh.

    /// Hook evaluated at ingest/snapshot/score/model-pin sites; nullptr
    /// disables injection entirely. Not owned; must outlive the engine.
    fault::FaultInjector* fault_injector = nullptr;
    /// Retries after a retryable (Internal/IOError) ingest failure.
    size_t ingest_retries = 3;
    /// Retries after a snapshot materialization failure per shard batch.
    size_t snapshot_retries = 2;
    /// First-retry backoff; doubles per attempt (exponential).
    double retry_backoff_us = 100.0;
    /// Backoff is scaled by a deterministic jitter factor drawn from
    /// [1 - retry_jitter, 1 + retry_jitter) (seeded, never wall clock).
    double retry_jitter = 0.2;
    /// Per-shard-batch scoring deadline in *virtual* microseconds
    /// (injected delays + assess_virtual_cost_us per assessment);
    /// databases past it fall back or are skipped. 0 disables.
    double batch_deadline_us = 0.0;
    /// Virtual cost charged against the deadline per assessment. Using
    /// virtual rather than wall time keeps deadline behaviour
    /// bit-reproducible across machines and thread counts.
    double assess_virtual_cost_us = 0.0;
    /// Ingest backlog (staged events) that trips load shedding; new
    /// events are rejected until the backlog drains. 0 disables.
    size_t shed_high_watermark = 0;
    /// Backlog at which shedding clears (hysteresis; clamped below the
    /// high watermark).
    size_t shed_low_watermark = 0;
    /// Clean polls (no fallback/deadline/retry-exhaustion) required to
    /// return from kDegraded to kHealthy.
    size_t recovery_polls = 3;
    /// P[long-lived] for the weighted-random fallback scorer; negative
    /// disables fallback (model-unavailable polls fail instead).
    double fallback_positive_rate = -1.0;
    /// Seed for fallback draws and retry jitter. Draws are forked per
    /// database id, so fallback outputs are independent of scoring
    /// order and thread count.
    uint64_t fallback_seed = 2018;
  };

  ScoringEngine(RegionContext region, Options options);
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  /// Accepts one telemetry event (thread-safe, lock-striped).
  Status Ingest(telemetry::Event event);

  /// Flushes staged events and scores every database whose observation
  /// window elapsed by `now`. Returns the new assessments sorted by
  /// database id. Requires a published model if anything matured.
  Result<std::vector<ScoredDatabase>> Poll(telemetry::Timestamp now);

  /// Final flush: scores everything still pending regardless of `now`
  /// (the replay has ended; every event the stream will ever carry has
  /// been ingested).
  Result<std::vector<ScoredDatabase>> Drain();

  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }

  const Options& options() const { return options_; }
  const RegionContext& region() const { return region_; }

  /// Current serving health (thread-safe snapshot; authoritative
  /// transitions happen on the Poll()/Drain() driver thread, except
  /// shedding engagement which Ingest() performs inline).
  HealthState health() const {
    return static_cast<HealthState>(
        health_.load(std::memory_order_relaxed));
  }

  EngineMetrics Metrics() const;

 private:
  struct ShardLog {
    /// Live columnar store holding every event routed to this shard so
    /// far (arrival order). While ordered streaming keeps it
    /// readable(), scoring tasks read it directly; out-of-order
    /// arrivals or a configured fault injector divert scoring to a
    /// copy+Finalize snapshot materialized from its event log.
    std::optional<telemetry::TelemetryStore> store;
  };

  /// Moves staged batches into shard logs and updates the tracker.
  void AbsorbStagedEvents();

  /// Scores `due` (grouped by shard, one pool task per shard batch).
  Result<std::vector<ScoredDatabase>> ScoreDue(
      std::vector<PendingDatabase> due);

  /// Runs one poll cycle (shared by Poll and Drain) and applies the
  /// health-state transitions it observed.
  Result<std::vector<ScoredDatabase>> RunCycle(
      std::vector<PendingDatabase> due);

  /// Scores one pending database with the weighted-random fallback.
  ScoredDatabase FallbackScore(const PendingDatabase& pending) const;

  /// Exponential backoff with deterministic jitter for retry `attempt`
  /// (0-based). Thread-safe.
  double RetryBackoffUs(size_t attempt);

  /// Moves `health_` to `next`, counting the transition. Thread-safe.
  void SetHealth(HealthState next);

  /// Post-cycle health bookkeeping: shedding watermarks and the
  /// degraded/healthy recovery counter. Driver thread only.
  void UpdateHealthAfterCycle(bool dirty);

  /// Registry-owned series backing EngineMetrics, labelled
  /// engine="<instance id>". Raw pointers resolved at construction;
  /// the registry outlives every engine.
  struct EngineSeries {
    obs::Counter* events_flushed = nullptr;
    obs::Counter* databases_tracked = nullptr;
    obs::Counter* databases_cancelled = nullptr;
    obs::Counter* databases_scored = nullptr;
    obs::Counter* databases_confident = nullptr;
    obs::Counter* databases_skipped = nullptr;
    obs::Counter* polls = nullptr;
    obs::Counter* snapshots = nullptr;
    obs::Counter* direct_reads = nullptr;
    obs::Counter* fallback_scored = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* rejected_shed = nullptr;
    obs::Counter* rejected_error = nullptr;
    obs::Counter* rejected_invalid = nullptr;
    obs::Gauge* health_state = nullptr;
    obs::Counter* health_transitions = nullptr;
    obs::Histogram* scoring_latency_us = nullptr;
  };

  static EngineSeries MakeEngineSeries();

  RegionContext region_;
  Options options_;
  EventIngestBuffer ingest_;
  MaturityTracker tracker_;
  ModelRegistry registry_;
  ThreadPool pool_;

  /// Shard logs are touched only by the Poll()/Drain() driver thread
  /// and by the scoring task spawned for that shard within one poll
  /// (which only reads; the driver blocks on the batch before mutating
  /// again), so they need no lock of their own.
  std::vector<ShardLog> shard_logs_;

  EngineSeries series_;

  /// Fitted iff options_.fallback_positive_rate >= 0.
  ml::WeightedRandomClassifier fallback_model_;

  /// Health state machine (values of HealthState). Atomic because
  /// Ingest() engages shedding from producer threads while the driver
  /// thread owns every other transition.
  std::atomic<int> health_{0};
  /// Salt for retry-jitter draws; advancing it per retry keeps sleeps
  /// varied without sharing an Rng across producer threads.
  std::atomic<uint64_t> jitter_salt_{0};
  /// Consecutive clean polls while degraded. Driver thread only.
  size_t clean_polls_ = 0;
  /// True while the current cycle observed degradation. Set by scoring
  /// tasks (under the futures barrier), read by the driver.
  std::atomic<bool> cycle_dirty_{false};
};

}  // namespace cloudsurv::serving

#endif  // CLOUDSURV_SERVING_SCORING_ENGINE_H_
