#ifndef CLOUDSURV_SERVING_SCORING_ENGINE_H_
#define CLOUDSURV_SERVING_SCORING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/service.h"
#include "obs/metrics.h"
#include "serving/event_ingest.h"
#include "serving/maturity_tracker.h"
#include "serving/model_registry.h"
#include "common/thread_pool.h"
#include "telemetry/store.h"

namespace cloudsurv::serving {

/// Region metadata a snapshot TelemetryStore needs (calendar features
/// read it). Copy it from the region's config or any store of the
/// region.
struct RegionContext {
  std::string region_name;
  int utc_offset_minutes = 0;
  telemetry::HolidayCalendar holidays;
  telemetry::Timestamp window_start = 0;
  telemetry::Timestamp window_end = 0;

  static RegionContext FromStore(const telemetry::TelemetryStore& store);
};

/// One online assessment produced by the engine.
struct ScoredDatabase {
  telemetry::DatabaseId database_id = telemetry::kInvalidId;
  telemetry::SubscriptionId subscription_id = telemetry::kInvalidId;
  /// Prediction time Tp = created_at + observe window.
  telemetry::Timestamp matured_at = 0;
  /// Registry version of the model that produced the assessment.
  uint64_t model_version = 0;
  core::LongevityService::Assessment assessment;
};

/// Point-in-time engine counters. Latency quantiles cover the per-
/// database Assess() call (feature extraction + forest inference)
/// inside worker threads, in microseconds.
///
/// This struct is a *view*: the authoritative state lives in the
/// process-wide obs::Registry as `cloudsurv_engine_*` series labelled
/// with this engine's instance id (so multiple engines in one process
/// stay distinguishable, and `Metrics()` keeps per-engine semantics).
/// Quantiles are estimated from the registry histogram's log-scale
/// buckets and are 0 when no assessment has been recorded.
struct EngineMetrics {
  uint64_t events_ingested = 0;
  uint64_t events_flushed = 0;
  uint64_t databases_tracked = 0;   ///< Creations registered for scoring.
  uint64_t databases_cancelled = 0; ///< Dropped before maturing.
  uint64_t databases_scored = 0;
  uint64_t databases_confident = 0;
  uint64_t databases_skipped = 0;   ///< Matured but Assess() failed.
  uint64_t polls = 0;
  uint64_t snapshots_built = 0;
  double scoring_p50_us = 0.0;
  double scoring_p99_us = 0.0;

  double confident_fraction() const {
    return databases_scored == 0
               ? 0.0
               : static_cast<double>(databases_confident) /
                     static_cast<double>(databases_scored);
  }
};

/// Online scoring engine: the serving-path counterpart of the one-shot
/// LongevityService::Assess() batch flow.
///
/// Data flow per poll cycle:
///   producers --Ingest()--> EventIngestBuffer (mutex-striped shards,
///                           keyed by subscription)
///   Poll(now) drains the buffer into per-shard event logs, registers
///   creations with the MaturityTracker (min-heap on created_at +
///   observe_days) and cancels databases dropped before maturing; then
///   every shard holding newly matured databases gets one ThreadPool
///   task that (a) materializes a finalized TelemetryStore snapshot of
///   the shard's events via the bulk move path and (b) scores its due
///   databases against the registry's current model snapshot.
///
/// Correctness: features only read telemetry at or before Tp and only
/// from the scored database's own subscription, and a shard owns every
/// event of its subscriptions — so a shard snapshot taken at any
/// now >= Tp yields bit-identical assessments to batch Assess() on the
/// full final store, regardless of thread count or poll cadence.
///
/// Threading contract: Ingest() is safe from any number of threads;
/// Poll()/Drain() must be called from one driver thread at a time.
/// ModelRegistry::Publish()/Activate() may race with everything
/// (hot-swap): each scoring task pins the model snapshot it starts
/// with, so swaps never tear a batch.
class ScoringEngine {
 public:
  struct Options {
    size_t num_shards = 16;
    size_t num_threads = 4;
    /// Bound on queued scoring tasks; Poll() blocks (backpressure) when
    /// the pool falls behind.
    size_t queue_capacity = 64;
    /// Observation span x in days; must match the published models'
    /// observe_days for assessments to be meaningful.
    double observe_days = 2.0;
  };

  ScoringEngine(RegionContext region, Options options);
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  /// Accepts one telemetry event (thread-safe, lock-striped).
  Status Ingest(telemetry::Event event);

  /// Flushes staged events and scores every database whose observation
  /// window elapsed by `now`. Returns the new assessments sorted by
  /// database id. Requires a published model if anything matured.
  Result<std::vector<ScoredDatabase>> Poll(telemetry::Timestamp now);

  /// Final flush: scores everything still pending regardless of `now`
  /// (the replay has ended; every event the stream will ever carry has
  /// been ingested).
  Result<std::vector<ScoredDatabase>> Drain();

  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }

  const Options& options() const { return options_; }
  const RegionContext& region() const { return region_; }

  EngineMetrics Metrics() const;

 private:
  struct ShardLog {
    /// Every event routed to this shard so far, arrival order. Snapshot
    /// stores are materialized from this (Finalize re-sorts).
    std::vector<telemetry::Event> events;
  };

  /// Moves staged batches into shard logs and updates the tracker.
  void AbsorbStagedEvents();

  /// Scores `due` (grouped by shard, one pool task per shard batch).
  Result<std::vector<ScoredDatabase>> ScoreDue(
      std::vector<PendingDatabase> due);

  /// Registry-owned series backing EngineMetrics, labelled
  /// engine="<instance id>". Raw pointers resolved at construction;
  /// the registry outlives every engine.
  struct EngineSeries {
    obs::Counter* events_flushed = nullptr;
    obs::Counter* databases_tracked = nullptr;
    obs::Counter* databases_cancelled = nullptr;
    obs::Counter* databases_scored = nullptr;
    obs::Counter* databases_confident = nullptr;
    obs::Counter* databases_skipped = nullptr;
    obs::Counter* polls = nullptr;
    obs::Counter* snapshots = nullptr;
    obs::Histogram* scoring_latency_us = nullptr;
  };

  static EngineSeries MakeEngineSeries();

  RegionContext region_;
  Options options_;
  EventIngestBuffer ingest_;
  MaturityTracker tracker_;
  ModelRegistry registry_;
  ThreadPool pool_;

  /// Shard logs are touched only by the Poll()/Drain() driver thread
  /// and by the scoring task spawned for that shard within one poll
  /// (which only reads; the driver blocks on the batch before mutating
  /// again), so they need no lock of their own.
  std::vector<ShardLog> shard_logs_;

  EngineSeries series_;
};

}  // namespace cloudsurv::serving

#endif  // CLOUDSURV_SERVING_SCORING_ENGINE_H_
