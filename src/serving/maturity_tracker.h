#ifndef CLOUDSURV_SERVING_MATURITY_TRACKER_H_
#define CLOUDSURV_SERVING_MATURITY_TRACKER_H_

#include <cstdint>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "telemetry/events.h"

namespace cloudsurv::serving {

/// One database waiting for its observation window to elapse.
struct PendingDatabase {
  telemetry::DatabaseId database_id = telemetry::kInvalidId;
  telemetry::SubscriptionId subscription_id = telemetry::kInvalidId;
  /// created_at + observe window — the earliest instant the database can
  /// be scored (the paper's prediction time Tp).
  telemetry::Timestamp matures_at = 0;
  /// Ingest shard owning the subscription's events.
  size_t shard = 0;
};

/// Min-heap of databases keyed by maturity time (thread-safe).
///
/// Add() on creation; Cancel() when a drop arrives before maturity (the
/// prediction task is undefined for databases that did not survive the
/// observation window, so scoring them would only waste a snapshot).
/// TakeDue(now) pops everything with matures_at <= now. Cancellation is
/// lazy: cancelled entries stay in the heap and are skipped when popped.
class MaturityTracker {
 public:
  MaturityTracker() = default;

  /// Registers a database. Duplicate ids are ignored (first add wins).
  void Add(PendingDatabase pending);

  /// Cancels `id` iff `dropped_at` precedes its maturity time. A no-op
  /// for unknown or already-taken ids. Returns true if cancelled.
  bool Cancel(telemetry::DatabaseId id, telemetry::Timestamp dropped_at);

  /// Pops every pending database with matures_at <= now, in maturity
  /// order (ties broken by id, so output order is deterministic).
  std::vector<PendingDatabase> TakeDue(telemetry::Timestamp now);

  /// Pops everything still pending regardless of time (final drain).
  std::vector<PendingDatabase> TakeAll();

  /// Databases currently waiting (excluding cancelled ones).
  size_t pending_count() const;

  uint64_t total_added() const;
  uint64_t total_cancelled() const;

 private:
  struct Later {
    bool operator()(const PendingDatabase& a,
                    const PendingDatabase& b) const {
      if (a.matures_at != b.matures_at) return a.matures_at > b.matures_at;
      return a.database_id > b.database_id;
    }
  };

  mutable std::mutex mu_;
  std::priority_queue<PendingDatabase, std::vector<PendingDatabase>, Later>
      heap_;
  /// matures_at per live (non-cancelled, non-taken) id; doubles as the
  /// duplicate filter and the cancellation check.
  std::unordered_map<telemetry::DatabaseId, telemetry::Timestamp> live_;
  uint64_t total_added_ = 0;
  uint64_t total_cancelled_ = 0;
};

}  // namespace cloudsurv::serving

#endif  // CLOUDSURV_SERVING_MATURITY_TRACKER_H_
