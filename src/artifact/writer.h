#ifndef CLOUDSURV_ARTIFACT_WRITER_H_
#define CLOUDSURV_ARTIFACT_WRITER_H_

#include <string>
#include <vector>

#include "artifact/format.h"
#include "common/status.h"

namespace cloudsurv::artifact {

/// Assembles a CSRV container in memory and publishes it atomically.
///
/// Usage:
///   ArtifactWriter writer(PayloadKind::kFlatForest);
///   writer.AddArray(SectionId::kNodeFeature, 0, feat.data(), feat.size());
///   ...
///   CLOUDSURV_RETURN_NOT_OK(writer.WriteFile("model.csrv"));
///
/// Sections keep their insertion order; offsets, alignment padding, and
/// all three checksum layers (header, table, per-section) are computed
/// in Finish(). WriteFile() writes to `<path>.tmp.<pid>`, flushes, and
/// renames over `path`, so a crash mid-write can never leave a torn
/// file where a reader (or ModelRegistry::PublishFromFile) looks.
class ArtifactWriter {
 public:
  explicit ArtifactWriter(PayloadKind payload) : payload_(payload) {}

  /// Appends `count` elements of `elem_size` bytes each. The bytes are
  /// copied into the writer (callers may free theirs immediately).
  void AddSection(SectionId id, uint32_t index, const void* data,
                  uint64_t count, uint32_t elem_size);

  /// Appends a typed array section.
  template <typename T>
  void AddArray(SectionId id, uint32_t index, const T* data, size_t count) {
    AddSection(id, index, data, count, static_cast<uint32_t>(sizeof(T)));
  }

  /// Appends a single fixed-size struct (ForestMeta, ModelEntry, ...).
  template <typename T>
  void AddStruct(SectionId id, uint32_t index, const T& value) {
    AddSection(id, index, &value, 1, static_cast<uint32_t>(sizeof(T)));
  }

  /// Appends raw bytes (elem_size 1) — the trainable text blobs.
  void AddBytes(SectionId id, uint32_t index, const std::string& bytes) {
    AddSection(id, index, bytes.data(), bytes.size(), 1);
  }

  size_t num_sections() const { return sections_.size(); }

  /// Serializes the complete container image. Fails on a big-endian
  /// host (the format is defined little-endian and this implementation
  /// does not byte-swap) or an empty section list.
  Result<std::string> Finish() const;

  /// Finish() plus atomic tmp-file + rename publication to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  struct Pending {
    SectionId id;
    uint32_t index;
    uint64_t count;
    uint32_t elem_size;
    std::string payload;
  };

  PayloadKind payload_;
  std::vector<Pending> sections_;
};

}  // namespace cloudsurv::artifact

#endif  // CLOUDSURV_ARTIFACT_WRITER_H_
