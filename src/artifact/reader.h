#ifndef CLOUDSURV_ARTIFACT_READER_H_
#define CLOUDSURV_ARTIFACT_READER_H_

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "artifact/format.h"
#include "common/status.h"

namespace cloudsurv::artifact {

/// The validated bytes behind an open artifact: either an mmap'ed
/// read-only file (the zero-copy production path — consumers serve
/// straight from the page cache) or a 64-byte-aligned heap buffer (the
/// portable buffered-read fallback, also used for in-memory images in
/// tests). Destroying the last reference unmaps / frees.
class ArtifactBuffer {
 public:
  ~ArtifactBuffer();
  ArtifactBuffer(const ArtifactBuffer&) = delete;
  ArtifactBuffer& operator=(const ArtifactBuffer&) = delete;

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }
  /// True for an mmap'ed file, false for the heap fallback.
  bool mapped() const { return mapped_; }

 private:
  friend class ArtifactReader;
  ArtifactBuffer() = default;

  unsigned char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

/// Validating random-access reader over one CSRV container.
///
/// Open() maps (or reads) the file and verifies the full integrity
/// chain before returning: magic, format version, exact file size,
/// header CRC, section-table bounds + CRC, and — unless disabled —
/// every section payload CRC. A reader that opened successfully hands
/// out pointers directly into the backing bytes; nothing is copied.
///
/// The reader is cheaply copyable (shared backing). Consumers that
/// retain section pointers beyond the reader's lifetime must retain
/// backing() alongside them — ml::FlatForest::FromView does exactly
/// that, which is what keeps an mmap'ed model image alive for as long
/// as any published snapshot still references it.
class ArtifactReader {
 public:
  struct Options {
    /// Try mmap first; fall back to a buffered read when mapping is
    /// unavailable (non-POSIX build, exotic filesystem). Set to false
    /// to force the portable path.
    bool prefer_mmap = true;
    /// Verify every section payload CRC at open time. Leave on:
    /// corruption is then rejected before a model can be built, at the
    /// cost of touching each page once (a sequential read-ahead, not a
    /// copy).
    bool verify_section_checksums = true;
  };

  /// Opens and validates `path`.
  static Result<ArtifactReader> Open(const std::string& path,
                                     const Options& options);
  static Result<ArtifactReader> Open(const std::string& path) {
    return Open(path, Options());
  }

  /// Validates an in-memory image (always the buffered path).
  static Result<ArtifactReader> FromBuffer(std::string image,
                                           const Options& options);
  static Result<ArtifactReader> FromBuffer(std::string image) {
    return FromBuffer(std::move(image), Options());
  }

  uint32_t format_version() const { return header_.format_version; }
  PayloadKind payload() const {
    return static_cast<PayloadKind>(header_.payload);
  }
  size_t file_size() const { return buffer_->size(); }
  /// True when the backing bytes are an mmap'ed file (zero-copy path).
  bool mapped() const { return buffer_->mapped(); }

  /// All sections in file order.
  const std::vector<SectionEntry>& sections() const { return sections_; }

  /// Looks up the section (id, index); nullptr when absent.
  const SectionEntry* Find(SectionId id, uint32_t index) const;

  /// Typed in-place view of an array section. Checks presence, element
  /// size, and alignment; the returned pointers alias the backing
  /// bytes (keep backing() alive).
  template <typename T>
  Result<ArraySpan<T>> Array(SectionId id, uint32_t index) const {
    const SectionEntry* entry = Find(id, index);
    if (entry == nullptr) {
      return Status::NotFound(std::string("artifact section ") +
                              SectionIdName(id) + "[" +
                              std::to_string(index) + "] is missing");
    }
    if (entry->elem_size != sizeof(T)) {
      return Status::InvalidArgument(
          std::string("artifact section ") + SectionIdName(id) +
          " has element size " + std::to_string(entry->elem_size) +
          ", expected " + std::to_string(sizeof(T)));
    }
    ArraySpan<T> span;
    span.data = reinterpret_cast<const T*>(buffer_->data() + entry->offset);
    span.size = static_cast<size_t>(entry->count);
    return span;
  }

  /// Copies a single fixed-size struct section out of the file. Struct
  /// sections are one cache line; copying them costs nothing and keeps
  /// the POD usable after the reader goes away.
  template <typename T>
  Result<T> Struct(SectionId id, uint32_t index) const {
    CLOUDSURV_ASSIGN_OR_RETURN(ArraySpan<T> span, Array<T>(id, index));
    if (span.size != 1) {
      return Status::InvalidArgument(
          std::string("artifact section ") + SectionIdName(id) +
          " holds " + std::to_string(span.size) + " structs, expected 1");
    }
    T out;
    std::memcpy(&out, span.data, sizeof(T));
    return out;
  }

  /// Raw payload bytes of `entry` (aliasing the backing buffer).
  const unsigned char* SectionBytes(const SectionEntry& entry) const {
    return buffer_->data() + entry.offset;
  }

  /// Shared ownership of the backing bytes; consumers keeping views
  /// into the file hold this to pin the mapping.
  std::shared_ptr<const ArtifactBuffer> backing() const { return buffer_; }

 private:
  ArtifactReader() = default;

  static Result<std::shared_ptr<ArtifactBuffer>> ReadWholeFile(
      const std::string& path);
  static Result<std::shared_ptr<ArtifactBuffer>> MapFile(
      const std::string& path);
  static Result<ArtifactReader> Validate(
      std::shared_ptr<ArtifactBuffer> buffer, const Options& options);

  FileHeader header_{};
  std::vector<SectionEntry> sections_;
  std::shared_ptr<ArtifactBuffer> buffer_;
};

/// Reads just enough of `path` to classify it: true iff it starts with
/// the CSRV magic. IOError when the file cannot be read at all.
Result<bool> FileHasArtifactMagic(const std::string& path);

}  // namespace cloudsurv::artifact

#endif  // CLOUDSURV_ARTIFACT_READER_H_
