#include "artifact/format.h"

#include <array>
#include <cstring>

namespace cloudsurv::artifact {

namespace {

/// 8-table slicing CRC32C lookup, built once on first use.
struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // Castagnoli, reflected.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xffu];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto& tb = Tables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    // Process 8 bytes per step through the sliced tables.
    crc ^= static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[7][crc & 0xffu] ^ tb.t[6][(crc >> 8) & 0xffu] ^
          tb.t[5][(crc >> 16) & 0xffu] ^ tb.t[4][crc >> 24] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xffu];
  }
  return ~crc;
}

bool HasArtifactMagic(const void* data, size_t size) {
  return size >= sizeof(kMagic) &&
         std::memcmp(data, kMagic, sizeof(kMagic)) == 0;
}

const char* SectionIdName(SectionId id) {
  switch (id) {
    case SectionId::kForestMeta: return "forest_meta";
    case SectionId::kNodeFeature: return "node_feature";
    case SectionId::kNodeThreshold: return "node_threshold";
    case SectionId::kNodeLeft: return "node_left";
    case SectionId::kNodeRight: return "node_right";
    case SectionId::kNodeLeafIndex: return "node_leaf_index";
    case SectionId::kLeafValues: return "leaf_values";
    case SectionId::kTreeOffsets: return "tree_offsets";
    case SectionId::kQuantThreshold: return "quant_threshold";
    case SectionId::kCutOffsets: return "cut_offsets";
    case SectionId::kCutValues: return "cut_values";
    case SectionId::kServiceMeta: return "service_meta";
    case SectionId::kModelEntry: return "model_entry";
    case SectionId::kForestBlob: return "forest_blob";
  }
  return "unknown";
}

}  // namespace cloudsurv::artifact
