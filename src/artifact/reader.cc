#include "artifact/reader.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <fstream>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define CLOUDSURV_HAVE_MMAP 1
#endif

namespace cloudsurv::artifact {

namespace {

/// Heap-allocates a kSectionAlignment-aligned buffer so the buffered
/// fallback honours the same alignment guarantees mmap gives (file
/// offsets are 64-byte aligned; the base must be too).
unsigned char* AlignedAlloc(size_t size) {
  const size_t rounded =
      (size + kSectionAlignment - 1) / kSectionAlignment * kSectionAlignment;
  return static_cast<unsigned char*>(
      std::aligned_alloc(kSectionAlignment, rounded == 0 ? kSectionAlignment
                                                         : rounded));
}

}  // namespace

Result<std::shared_ptr<ArtifactBuffer>> ArtifactReader::ReadWholeFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::IOError("cannot stat " + path);
  }
  auto buffer = std::shared_ptr<ArtifactBuffer>(new ArtifactBuffer());
  buffer->size_ = static_cast<size_t>(size);
  buffer->data_ = AlignedAlloc(buffer->size_);
  if (buffer->data_ == nullptr) {
    return Status::Internal("cannot allocate " + std::to_string(size) +
                            " bytes for " + path);
  }
  in.seekg(0);
  in.read(reinterpret_cast<char*>(buffer->data_),
          static_cast<std::streamsize>(buffer->size_));
  if (!in && buffer->size_ > 0) {
    return Status::IOError("short read: " + path);
  }
  return buffer;
}

#ifdef CLOUDSURV_HAVE_MMAP
Result<std::shared_ptr<ArtifactBuffer>> ArtifactReader::MapFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument(path + " is empty");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The fd is not needed once the mapping exists.
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path);
  }
  auto buffer = std::shared_ptr<ArtifactBuffer>(new ArtifactBuffer());
  buffer->data_ = static_cast<unsigned char*>(base);
  buffer->size_ = size;
  buffer->mapped_ = true;
  return buffer;
}
#endif

ArtifactBuffer::~ArtifactBuffer() {
  if (data_ == nullptr) return;
#ifdef CLOUDSURV_HAVE_MMAP
  if (mapped_) {
    ::munmap(data_, size_);
    return;
  }
#endif
  std::free(data_);
}

Result<ArtifactReader> ArtifactReader::Open(const std::string& path,
                                            const Options& options) {
  std::shared_ptr<ArtifactBuffer> buffer;
#ifdef CLOUDSURV_HAVE_MMAP
  if (options.prefer_mmap) {
    auto mapped = MapFile(path);
    if (mapped.ok()) {
      buffer = std::move(*mapped);
    } else if (mapped.status().code() == StatusCode::kInvalidArgument) {
      // Empty file: not a mapping problem, a malformed artifact.
      return mapped.status();
    }
  }
#endif
  if (buffer == nullptr) {
    CLOUDSURV_ASSIGN_OR_RETURN(buffer, ReadWholeFile(path));
  }
  auto reader = Validate(std::move(buffer), options);
  if (!reader.ok()) {
    return Status(reader.status().code(),
                  path + ": " + reader.status().message());
  }
  return reader;
}

Result<ArtifactReader> ArtifactReader::FromBuffer(std::string image,
                                                  const Options& options) {
  auto buffer = std::shared_ptr<ArtifactBuffer>(new ArtifactBuffer());
  buffer->size_ = image.size();
  buffer->data_ = AlignedAlloc(image.size());
  if (buffer->data_ == nullptr) {
    return Status::Internal("cannot allocate artifact buffer");
  }
  std::memcpy(buffer->data_, image.data(), image.size());
  return Validate(std::move(buffer), options);
}

Result<ArtifactReader> ArtifactReader::Validate(
    std::shared_ptr<ArtifactBuffer> buffer, const Options& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented(
        "CSRV artifacts are little-endian; this host is big-endian and "
        "the reader does not byte-swap");
  }
  const unsigned char* base = buffer->data();
  const size_t size = buffer->size();
  if (size < sizeof(FileHeader)) {
    return Status::InvalidArgument(
        "truncated artifact: " + std::to_string(size) +
        " bytes is smaller than the " +
        std::to_string(sizeof(FileHeader)) + "-byte header");
  }

  ArtifactReader reader;
  std::memcpy(&reader.header_, base, sizeof(FileHeader));
  const FileHeader& header = reader.header_;
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "bad magic: not a CSRV artifact (text model? use the text "
        "loader)");
  }
  if (header.format_version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported CSRV format version " +
        std::to_string(header.format_version) + " (this reader supports " +
        std::to_string(kFormatVersion) + ")");
  }
  const uint32_t crc =
      Crc32c(base, offsetof(FileHeader, header_crc));
  if (crc != header.header_crc) {
    return Status::InvalidArgument("header CRC mismatch (corrupt header)");
  }
  if (header.file_size != size) {
    return Status::InvalidArgument(
        "file size mismatch: header says " +
        std::to_string(header.file_size) + " bytes, file has " +
        std::to_string(size) + " (truncated or appended-to)");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.table_offset > size || table_bytes > size - header.table_offset) {
    return Status::InvalidArgument("section table out of file bounds");
  }
  const uint32_t table_crc =
      Crc32c(base + header.table_offset, static_cast<size_t>(table_bytes));
  if (table_crc != header.table_crc) {
    return Status::InvalidArgument(
        "section table CRC mismatch (corrupt table)");
  }

  reader.sections_.resize(header.section_count);
  std::memcpy(reader.sections_.data(), base + header.table_offset,
              static_cast<size_t>(table_bytes));
  for (const SectionEntry& entry : reader.sections_) {
    const char* name = SectionIdName(static_cast<SectionId>(entry.id));
    const std::string label = std::string(name) + "[" +
                              std::to_string(entry.index) + "]";
    if (entry.offset > size || entry.size > size - entry.offset) {
      return Status::InvalidArgument("section " + label +
                                     " out of file bounds");
    }
    if (entry.alignment == 0 || entry.offset % entry.alignment != 0) {
      return Status::InvalidArgument("section " + label + " misaligned");
    }
    if (entry.elem_size == 0 ||
        entry.count != entry.size / entry.elem_size ||
        entry.size % entry.elem_size != 0) {
      return Status::InvalidArgument("section " + label +
                                     " has inconsistent element sizing");
    }
    if (options.verify_section_checksums) {
      const uint32_t payload_crc =
          Crc32c(base + entry.offset, static_cast<size_t>(entry.size));
      if (payload_crc != entry.crc) {
        return Status::InvalidArgument("section " + label +
                                       " CRC mismatch (corrupt payload)");
      }
    }
  }
  reader.buffer_ = std::move(buffer);
  return reader;
}

const SectionEntry* ArtifactReader::Find(SectionId id,
                                         uint32_t index) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.id == static_cast<uint32_t>(id) && entry.index == index) {
      return &entry;
    }
  }
  return nullptr;
}

Result<bool> FileHasArtifactMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  char head[sizeof(kMagic)] = {};
  in.read(head, sizeof(head));
  if (in.gcount() < static_cast<std::streamsize>(sizeof(head))) {
    return false;  // Shorter than the magic: certainly not an artifact.
  }
  return HasArtifactMagic(head, sizeof(head));
}

}  // namespace cloudsurv::artifact
