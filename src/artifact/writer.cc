#include "artifact/writer.h"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace cloudsurv::artifact {

namespace {

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

}  // namespace

void ArtifactWriter::AddSection(SectionId id, uint32_t index,
                                const void* data, uint64_t count,
                                uint32_t elem_size) {
  Pending pending;
  pending.id = id;
  pending.index = index;
  pending.count = count;
  pending.elem_size = elem_size;
  pending.payload.assign(static_cast<const char*>(data),
                         static_cast<size_t>(count * elem_size));
  sections_.push_back(std::move(pending));
}

Result<std::string> ArtifactWriter::Finish() const {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented(
        "CSRV artifacts are little-endian; this host is big-endian and "
        "the writer does not byte-swap");
  }
  if (sections_.empty()) {
    return Status::FailedPrecondition(
        "cannot finish an artifact with no sections");
  }

  // Lay out: header | aligned payloads | section table.
  std::vector<SectionEntry> table(sections_.size());
  uint64_t offset = sizeof(FileHeader);
  for (size_t i = 0; i < sections_.size(); ++i) {
    const Pending& p = sections_[i];
    offset = AlignUp(offset, kSectionAlignment);
    SectionEntry& entry = table[i];
    entry.id = static_cast<uint32_t>(p.id);
    entry.index = p.index;
    entry.offset = offset;
    entry.size = p.payload.size();
    entry.count = p.count;
    entry.elem_size = p.elem_size;
    entry.alignment = kSectionAlignment;
    entry.crc = Crc32c(p.payload.data(), p.payload.size());
    entry.reserved = 0;
    offset += p.payload.size();
  }
  const uint64_t table_offset = AlignUp(offset, kSectionAlignment);
  const uint64_t table_bytes = table.size() * sizeof(SectionEntry);
  const uint64_t file_size = table_offset + table_bytes;

  FileHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.format_version = kFormatVersion;
  header.payload = static_cast<uint32_t>(payload_);
  header.section_count = static_cast<uint32_t>(table.size());
  header.file_size = file_size;
  header.table_offset = table_offset;
  header.table_crc = Crc32c(table.data(), static_cast<size_t>(table_bytes));
  header.header_crc = Crc32c(&header, offsetof(FileHeader, header_crc));

  std::string out(static_cast<size_t>(file_size), '\0');
  std::memcpy(out.data(), &header, sizeof(header));
  for (size_t i = 0; i < sections_.size(); ++i) {
    std::memcpy(out.data() + table[i].offset, sections_[i].payload.data(),
                sections_[i].payload.size());
  }
  std::memcpy(out.data() + table_offset, table.data(),
              static_cast<size_t>(table_bytes));
  return out;
}

Status ArtifactWriter::WriteFile(const std::string& path) const {
  CLOUDSURV_ASSIGN_OR_RETURN(std::string image, Finish());

  // Write the complete image beside the target, then rename into
  // place: readers either see the old file or the new one, never a
  // prefix. (rename(2) is atomic within a filesystem.)
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open " + tmp_path + " for writing");
    }
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::IOError("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp_path.c_str());
    return Status::IOError("rename " + tmp_path + " -> " + path +
                           " failed: " + std::strerror(err));
  }
  return Status::OK();
}

}  // namespace cloudsurv::artifact
