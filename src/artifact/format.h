#ifndef CLOUDSURV_ARTIFACT_FORMAT_H_
#define CLOUDSURV_ARTIFACT_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace cloudsurv::artifact {

/// The CSRV binary model-artifact container.
///
/// A `.csrv` file is the persisted, production form of a trained model:
/// the `cloudsurv train -> pack -> serve` split stores compiled
/// `ml::FlatForest` SoA arrays (plus the trainable text blobs and the
/// service thresholds) in a layout a reader can `mmap` and serve from
/// directly — every array section is 64-byte aligned relative to the
/// file start, so after validation the arrays are used in place with
/// zero per-array copies.
///
/// File layout (all integers little-endian):
///
///   [FileHeader: 64 bytes]
///   [section 0 payload]        <- offset aligned to kSectionAlignment
///   [section 1 payload]
///   ...
///   [section table: section_count x SectionEntry]
///
/// Integrity: the header, the section table, and every section payload
/// carry independent CRC32C checksums; `file_size` in the header pins
/// the exact byte length so truncation is detected before any pointer
/// is formed. Readers reject wrong magic, unknown format versions, a
/// mismatched file size, out-of-range or misaligned sections, and any
/// checksum failure with a precise Status message.
///
/// Versioning policy (docs/artifacts.md): `format_version` is bumped on
/// any incompatible layout change; readers accept exactly the versions
/// they know. Adding new section ids is compatible (readers ignore
/// unknown ids); changing the meaning or encoding of an existing id is
/// not.

/// "CSRV" as the first four file bytes.
inline constexpr char kMagic[4] = {'C', 'S', 'R', 'V'};

/// Current (and only) container format version.
inline constexpr uint32_t kFormatVersion = 1;

/// Every section payload starts at a multiple of this from the file
/// start. Matches a cache line; mmap bases are page-aligned, so
/// in-file alignment carries over to virtual addresses.
inline constexpr uint32_t kSectionAlignment = 64;

/// What the container holds as a whole.
enum class PayloadKind : uint32_t {
  kFlatForest = 1,  ///< One compiled forest (sections with index 0).
  kService = 2,     ///< Full LongevityService snapshot (multi-slot).
};

/// Section identifiers. `SectionEntry::index` distinguishes multiple
/// sections of the same id (the model slot in a service payload).
enum class SectionId : uint32_t {
  // --- compiled ml::FlatForest (one set per model slot) -------------
  kForestMeta = 1,      ///< One ForestMeta struct.
  kNodeFeature = 2,     ///< int32[nodes], -1 marks a leaf.
  kNodeThreshold = 3,   ///< double[nodes].
  kNodeLeft = 4,        ///< int32[nodes], absolute node ids.
  kNodeRight = 5,       ///< int32[nodes].
  kNodeLeafIndex = 6,   ///< int32[nodes], row into leaf values or -1.
  kLeafValues = 7,      ///< double[leaves * leaf_dim].
  kTreeOffsets = 8,     ///< int32[trees + 1].
  kQuantThreshold = 9,  ///< uint16[nodes] (present iff quantized).
  kCutOffsets = 10,     ///< int32[features + 1] (present iff quantized).
  kCutValues = 11,      ///< double[total cuts] (present iff quantized).
  // --- LongevityService snapshot ------------------------------------
  kServiceMeta = 32,    ///< One ServiceMeta struct (index 0).
  kModelEntry = 33,     ///< One ModelEntry per slot (index = slot).
  kForestBlob = 34,     ///< Trainable text form per slot (index = slot).
};

/// Stable display name ("node_feature", "service_meta", ...) for
/// `cloudsurv inspect`; "unknown" for ids this build does not know.
const char* SectionIdName(SectionId id);

/// Fixed 64-byte file header at offset 0.
struct FileHeader {
  char magic[4];            ///< kMagic.
  uint32_t format_version;  ///< kFormatVersion.
  uint32_t payload;         ///< PayloadKind.
  uint32_t section_count;   ///< Entries in the section table.
  uint64_t file_size;       ///< Exact total file bytes.
  uint64_t table_offset;    ///< Byte offset of the section table.
  uint32_t table_crc;       ///< CRC32C of the raw section table bytes.
  uint32_t header_crc;      ///< CRC32C of the header up to this field.
  uint8_t reserved[24];     ///< Zero; pads the header to 64 bytes.
};
static_assert(sizeof(FileHeader) == 64, "header must stay 64 bytes");

/// One section-table row.
struct SectionEntry {
  uint32_t id;         ///< SectionId.
  uint32_t index;      ///< Slot ordinal among same-id sections.
  uint64_t offset;     ///< Payload offset from file start.
  uint64_t size;       ///< Payload bytes.
  uint64_t count;      ///< Element count (1 for POD structs).
  uint32_t elem_size;  ///< Bytes per element; size == count * elem_size.
  uint32_t alignment;  ///< Required payload alignment (kSectionAlignment).
  uint32_t crc;        ///< CRC32C of the payload bytes.
  uint32_t reserved;   ///< Zero.
};
static_assert(sizeof(SectionEntry) == 48, "entry must stay 48 bytes");

/// Fixed-size metadata for one compiled forest (SectionId::kForestMeta).
struct ForestMeta {
  int32_t num_classes;   ///< 0 for a boosted regressor.
  uint32_t flags;        ///< kForestQuantized | kForestNarrowCodes.
  uint64_t num_features;
  uint64_t leaf_dim;     ///< num_classes, or 1 for a regressor.
  uint64_t out_dim;
  double base_score;     ///< Regressor accumulator seed.
  uint8_t reserved[24];  ///< Zero.
};
static_assert(sizeof(ForestMeta) == 64, "forest meta must stay 64 bytes");

inline constexpr uint32_t kForestQuantized = 1u << 0;
inline constexpr uint32_t kForestNarrowCodes = 1u << 1;

/// Fixed-size metadata for a service snapshot (SectionId::kServiceMeta).
struct ServiceMeta {
  double observe_days;
  double long_threshold_days;
  uint32_t num_models;   ///< Count of kModelEntry sections.
  uint8_t reserved[44];  ///< Zero.
};
static_assert(sizeof(ServiceMeta) == 64, "service meta must stay 64 bytes");

/// Longest model name storable in a ModelEntry (bytes, excluding NUL).
inline constexpr size_t kMaxModelNameLen = 40;

/// One model slot of a service snapshot (SectionId::kModelEntry).
/// `slot` 0 is the pooled fallback model; slot 1 + e is the dedicated
/// model for edition e.
struct ModelEntry {
  uint32_t slot;
  uint32_t name_len;              ///< Bytes of `name` in use.
  double threshold;               ///< Confidence threshold max(q, 1-q).
  char name[kMaxModelNameLen];    ///< NUL-padded model name.
  uint8_t reserved[8];            ///< Zero.
};
static_assert(sizeof(ModelEntry) == 64, "model entry must stay 64 bytes");

/// A typed, non-owning view of one array section inside a validated
/// artifact. Lifetime is bounded by the reader's backing buffer.
template <typename T>
struct ArraySpan {
  const T* data = nullptr;
  size_t size = 0;
  bool empty() const { return size == 0; }
};

/// CRC32C (Castagnoli) of `size` bytes, seeded with `seed` so chunks
/// can be chained. Software table implementation — artifact files are
/// model-sized (kilobytes to a few hundred MB), not a hot path.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// True iff `data` (>= 4 bytes) starts with the CSRV magic — the
/// format-sniffing hook the CLI uses to accept `.csrv` and text models
/// through one flag.
bool HasArtifactMagic(const void* data, size_t size);

}  // namespace cloudsurv::artifact

#endif  // CLOUDSURV_ARTIFACT_FORMAT_H_
