#include "fault/fault.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace cloudsurv::fault {

namespace {

struct SiteName {
  Site site;
  const char* name;
};
constexpr SiteName kSiteNames[] = {
    {Site::kPoolTask, "pool.task"},
    {Site::kIngestShard, "ingest.shard"},
    {Site::kSnapshotBuild, "engine.snapshot"},
    {Site::kScoreAssess, "engine.score"},
    {Site::kRegistrySwap, "registry.swap"},
    {Site::kRegistryPublish, "registry.publish"},
    {Site::kEngineClock, "engine.clock"},
};

struct KindName {
  FaultKind kind;
  const char* name;
};
constexpr KindName kKindNames[] = {
    {FaultKind::kDelay, "delay"},
    {FaultKind::kStall, "stall"},
    {FaultKind::kAllocFail, "alloc_fail"},
    {FaultKind::kIoFail, "io_fail"},
    {FaultKind::kSwapRace, "swap_race"},
    {FaultKind::kClockSkew, "clock_skew"},
};

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseInt(std::string_view text, int64_t* out) {
  bool negative = false;
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
    negative = text[0] == '-';
    text.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseUint(text, &magnitude)) return false;
  if (magnitude > static_cast<uint64_t>(INT64_MAX)) return false;
  *out = negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

bool KindAllowedAtSite(FaultKind kind, Site site) {
  switch (kind) {
    case FaultKind::kDelay:
    case FaultKind::kStall:
      return true;  // sleeping is meaningful at every hook
    case FaultKind::kAllocFail:
    case FaultKind::kIoFail:
      return site == Site::kIngestShard || site == Site::kSnapshotBuild;
    case FaultKind::kSwapRace:
      return site == Site::kRegistrySwap;
    case FaultKind::kClockSkew:
      return site == Site::kEngineClock;
  }
  return false;
}

}  // namespace

const char* SiteToString(Site site) {
  for (const SiteName& entry : kSiteNames) {
    if (entry.site == site) return entry.name;
  }
  return "unknown";
}

bool SiteFromString(std::string_view name, Site* site) {
  for (const SiteName& entry : kSiteNames) {
    if (name == entry.name) {
      *site = entry.site;
      return true;
    }
  }
  return false;
}

const char* FaultKindToString(FaultKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

bool FaultKindFromString(std::string_view name, FaultKind* kind) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

bool FaultPlan::Parse(const std::string& text, FaultPlan* plan,
                      std::string* error) {
  FaultPlan parsed;
  std::istringstream in(text);
  std::string raw_line;
  size_t line_number = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "fault plan line " + std::to_string(line_number) + ": " +
               message;
    }
    return false;
  };
  while (std::getline(in, raw_line)) {
    ++line_number;
    std::string_view line = raw_line;
    const size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    const std::vector<std::string_view> tokens = Tokenize(line);
    if (tokens.empty()) continue;

    if (tokens[0] == "seed") {
      if (tokens.size() != 2 || !ParseUint(tokens[1], &parsed.seed)) {
        return fail("expected 'seed <uint64>'");
      }
      continue;
    }
    if (tokens[0] != "fault") {
      return fail("expected 'seed' or 'fault', got '" +
                  std::string(tokens[0]) + "'");
    }
    if (tokens.size() < 3) {
      return fail("expected 'fault <site> <kind> [key=value...]'");
    }
    FaultRule rule;
    if (!SiteFromString(tokens[1], &rule.site)) {
      return fail("unknown site '" + std::string(tokens[1]) + "'");
    }
    if (!FaultKindFromString(tokens[2], &rule.kind)) {
      return fail("unknown fault kind '" + std::string(tokens[2]) + "'");
    }
    if (!KindAllowedAtSite(rule.kind, rule.site)) {
      return fail(std::string(FaultKindToString(rule.kind)) +
                  " is not injectable at site " +
                  SiteToString(rule.site));
    }
    bool saw_delay = false;
    bool saw_skew = false;
    for (size_t t = 3; t < tokens.size(); ++t) {
      const std::string_view token = tokens[t];
      const size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        return fail("expected key=value, got '" + std::string(token) + "'");
      }
      const std::string_view key = token.substr(0, eq);
      const std::string_view value = token.substr(eq + 1);
      bool ok = true;
      if (key == "every") {
        ok = ParseUint(value, &rule.every) && rule.every >= 1;
      } else if (key == "from") {
        ok = ParseUint(value, &rule.from);
      } else if (key == "until") {
        ok = ParseUint(value, &rule.until);
      } else if (key == "count") {
        ok = ParseUint(value, &rule.count) && rule.count >= 1;
      } else if (key == "shard") {
        ok = ParseInt(value, &rule.shard) && rule.shard >= 0;
      } else if (key == "delay_us") {
        ok = ParseDouble(value, &rule.delay_us) && rule.delay_us > 0.0;
        saw_delay = ok;
      } else if (key == "skew_s") {
        ok = ParseInt(value, &rule.skew_s) && rule.skew_s != 0;
        saw_skew = ok;
      } else {
        return fail("unknown key '" + std::string(key) + "'");
      }
      if (!ok) {
        return fail("invalid value for '" + std::string(key) + "': '" +
                    std::string(value) + "'");
      }
    }
    if (rule.until <= rule.from) {
      return fail("'until' must be greater than 'from'");
    }
    if ((rule.kind == FaultKind::kDelay || rule.kind == FaultKind::kStall) &&
        !saw_delay) {
      return fail("delay/stall rules require delay_us=<positive>");
    }
    if (rule.kind == FaultKind::kClockSkew && !saw_skew) {
      return fail("clock_skew rules require skew_s=<nonzero>");
    }
    parsed.rules.push_back(rule);
  }
  *plan = std::move(parsed);
  return true;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  out << "seed " << seed << "\n";
  for (const FaultRule& rule : rules) {
    out << "fault " << SiteToString(rule.site) << ' '
        << FaultKindToString(rule.kind);
    if (rule.every != 1) out << " every=" << rule.every;
    if (rule.from != 0) out << " from=" << rule.from;
    if (rule.until != UINT64_MAX) out << " until=" << rule.until;
    if (rule.count != UINT64_MAX) out << " count=" << rule.count;
    if (rule.shard >= 0) out << " shard=" << rule.shard;
    if (rule.delay_us > 0.0) out << " delay_us=" << rule.delay_us;
    if (rule.skew_s != 0) out << " skew_s=" << rule.skew_s;
    out << "\n";
  }
  return out.str();
}

bool FaultPlan::output_neutral() const {
  for (const FaultRule& rule : rules) {
    switch (rule.kind) {
      case FaultKind::kDelay:
      case FaultKind::kStall:
        break;
      case FaultKind::kClockSkew:
        // A clock running behind only scores databases *later* (the
        // snapshot-at-any-now>=Tp property keeps outputs identical);
        // a clock running ahead can score before every pre-Tp event
        // arrived, which does change outputs.
        if (rule.skew_s > 0) return false;
        break;
      default:
        return false;
    }
  }
  return true;
}

void SleepFor(double us) {
  if (us <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::micro>(us));
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  obs::Registry& registry = obs::Registry::Default();
  rules_.reserve(plan_.rules.size());
  for (const FaultRule& rule : plan_.rules) {
    RuleState state;
    state.rule = rule;
    state.injected = registry.GetCounter(
        "cloudsurv_fault_injected_total", "Faults fired by the injector",
        "faults",
        {{"kind", FaultKindToString(rule.kind)},
         {"site", SiteToString(rule.site)}});
    rules_.push_back(state);
    site_has_rules_[static_cast<size_t>(rule.site)] = true;
  }
}

Outcome FaultInjector::Evaluate(Site site, int64_t shard) {
  Outcome outcome;
  if (!site_has_rules_[static_cast<size_t>(site)]) return outcome;

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t hit = hits_[static_cast<size_t>(site)][shard]++;
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.site != site) continue;
    if (rule.shard >= 0 && rule.shard != shard) continue;
    if (hit < rule.from || hit >= rule.until) continue;
    if ((hit - rule.from) % rule.every != 0) continue;
    // `count` caps matching hits per (site, shard) counter, never via
    // shared mutable state: a global budget would let racing shards
    // steal fires from each other and break byte-identical replay.
    if ((hit - rule.from) / rule.every >= rule.count) continue;
    state.injected->Increment();

    FaultEvent event;
    event.site = site;
    event.kind = rule.kind;
    event.shard = shard;
    event.hit = hit;
    switch (rule.kind) {
      case FaultKind::kDelay:
        outcome.delay_us += rule.delay_us;
        event.delay_us = rule.delay_us;
        break;
      case FaultKind::kStall:
        outcome.stall_us += rule.delay_us;
        event.delay_us = rule.delay_us;
        break;
      case FaultKind::kAllocFail:
        outcome.fail = true;
        break;
      case FaultKind::kIoFail:
        outcome.fail = true;
        outcome.io = true;
        break;
      case FaultKind::kSwapRace:
        outcome.swap_race = true;
        break;
      case FaultKind::kClockSkew:
        outcome.skew_s += rule.skew_s;
        event.skew_s = rule.skew_s;
        break;
    }
    log_.push_back(event);
  }
  return outcome;
}

std::vector<FaultEvent> FaultInjector::Events() const {
  std::vector<FaultEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = log_;
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.site != b.site) return a.site < b.site;
              if (a.shard != b.shard) return a.shard < b.shard;
              if (a.hit != b.hit) return a.hit < b.hit;
              return a.kind < b.kind;
            });
  return events;
}

std::string FaultInjector::LogToString() const {
  std::ostringstream out;
  for (const FaultEvent& event : Events()) {
    out << SiteToString(event.site);
    if (event.shard >= 0) out << '[' << event.shard << ']';
    out << '#' << event.hit << ' ' << FaultKindToString(event.kind);
    if (event.delay_us > 0.0) out << ' ' << event.delay_us << "us";
    if (event.skew_s != 0) out << ' ' << event.skew_s << "s";
    out << '\n';
  }
  return out.str();
}

uint64_t FaultInjector::total_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

}  // namespace cloudsurv::fault
