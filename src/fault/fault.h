#ifndef CLOUDSURV_FAULT_FAULT_H_
#define CLOUDSURV_FAULT_FAULT_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace cloudsurv::fault {

/// Deterministic fault injection.
///
/// This layer sits between `obs` and `common`: `common`'s ThreadPool
/// (and everything above it) compiles FaultPoint hooks against it, so
/// it may depend only on the standard library and `obs`. That is why
/// plan parsing reports errors through a bool + message out-parameter
/// instead of `common`'s Status — Status lives one layer up.
///
/// Model: a FaultPlan is a list of rules, each bound to a compiled-in
/// hook site. Every time a hook evaluates, the (site, shard) pair's hit
/// counter advances; a rule fires iff the hit index satisfies its
/// `from`/`until`/`every`/`count` schedule. Firing is therefore a pure
/// function of the hit index — no clocks, no random draws — so a fixed
/// configuration replays the exact same fault sequence on every run,
/// and the sorted FaultLog is comparable across runs byte for byte.
///
/// Determinism fine print: per-(site, shard) hit counters are exact
/// under concurrency (atomic advance under the injector mutex), and
/// every schedule knob — `count` included — is accounted per counter,
/// so the *set* of fired (site, shard, hit) triples is always
/// reproducible. Which caller observes a given hit can vary with
/// thread scheduling; rules on shard-keyed sites (`ingest.shard`,
/// `engine.snapshot`, `engine.score`, `registry.swap`) are
/// scheduling-independent because
/// each shard's hits occur in a fixed order, while `pool.task` hits
/// interleave across workers — restrict output-affecting rules to
/// shard-keyed sites when exact replay matters (delays are always
/// output-neutral).

/// Compiled-in hook points.
enum class Site {
  kPoolTask = 0,    ///< ThreadPool worker, before running a task.
  kIngestShard,     ///< EventIngestBuffer::Ingest, keyed by shard.
  kSnapshotBuild,   ///< ScoringEngine snapshot materialization, by shard.
  kScoreAssess,     ///< ScoringEngine per-database scoring, by shard.
  kRegistrySwap,    ///< ScoringEngine model pin, keyed by shard.
  kRegistryPublish, ///< ModelRegistry::Publish critical section.
  kEngineClock,     ///< ScoringEngine::Poll clock read.
};
inline constexpr size_t kNumSites = 7;

/// Stable spec name of a site ("pool.task", "ingest.shard", ...).
const char* SiteToString(Site site);
bool SiteFromString(std::string_view name, Site* site);

enum class FaultKind {
  kDelay = 0,   ///< Sleep `delay_us` before the hooked operation.
  kStall,       ///< Sleep `delay_us` while the owner holds its lock.
  kAllocFail,   ///< Simulated allocation failure (retryable).
  kIoFail,      ///< Simulated IO failure (retryable).
  kSwapRace,    ///< Model pin observes the registry mid-swap (no model).
  kClockSkew,   ///< Poll clock reads skewed by `skew_s` seconds.
};
inline constexpr size_t kNumFaultKinds = 6;

/// Stable spec name of a kind ("delay", "alloc_fail", ...).
const char* FaultKindToString(FaultKind kind);
bool FaultKindFromString(std::string_view name, FaultKind* kind);

/// One scheduled fault. A rule fires at hit index i (0-based, per
/// (site, shard) counter) iff
///   i >= from && i < until && (i - from) % every == 0
/// and i is among the first `count` matching hits of that counter
/// ((i - from) / every < count). Accounting `count` per counter — not
/// globally across shards — keeps firing a pure function of the hit
/// index, so racing shards cannot steal each other's budget.
struct FaultRule {
  Site site = Site::kPoolTask;
  FaultKind kind = FaultKind::kDelay;
  uint64_t every = 1;
  uint64_t from = 0;
  uint64_t until = UINT64_MAX;
  uint64_t count = UINT64_MAX;
  /// Restricts the rule to one shard key; -1 matches every key.
  int64_t shard = -1;
  double delay_us = 0.0;   ///< kDelay / kStall.
  int64_t skew_s = 0;      ///< kClockSkew (may be negative = clock behind).
};

/// A parsed fault plan: a seed (salts retry-backoff jitter in the
/// serving layer; never affects which faults fire) plus rules.
///
/// Text format, line oriented ('#' starts a comment):
///
///   seed 42
///   fault <site> <kind> [every=N] [from=N] [until=N] [count=N]
///                       [shard=K] [delay_us=X] [skew_s=X]
///
/// e.g.
///
///   seed 7
///   fault pool.task delay every=100 delay_us=2000
///   fault ingest.shard stall shard=3 from=10 until=20 delay_us=500
///   fault engine.snapshot io_fail every=7 count=2
///   fault registry.swap swap_race every=3
///   fault engine.clock clock_skew skew_s=-3600 from=5
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// Parses the text spec. On failure returns false and sets *error to
  /// a one-line diagnostic naming the offending line.
  static bool Parse(const std::string& text, FaultPlan* plan,
                    std::string* error);

  /// Canonical round-trippable rendering of the plan.
  std::string ToString() const;

  /// True iff no rule can change engine outputs: only delays, stalls
  /// and non-forward clock skew (scoring later never changes an
  /// assessment; scoring *earlier* than Tp-complete ingestion can).
  bool output_neutral() const;
};

/// One fired fault, as recorded in the log.
struct FaultEvent {
  Site site = Site::kPoolTask;
  FaultKind kind = FaultKind::kDelay;
  int64_t shard = -1;   ///< Hit-counter key the fault fired under.
  uint64_t hit = 0;     ///< Hit index at that (site, shard) counter.
  double delay_us = 0.0;
  int64_t skew_s = 0;
};

/// What one hook evaluation asks its caller to do. Multiple rules can
/// fire on the same hit; delays accumulate, flags OR together.
struct Outcome {
  double delay_us = 0.0;   ///< Sleep this long without holding locks.
  double stall_us = 0.0;   ///< Sleep this long while holding the lock.
  bool fail = false;       ///< Simulate a failure (see io flag).
  bool io = false;         ///< Failed as IO error (else allocation).
  bool swap_race = false;  ///< Pretend the model registry is mid-swap.
  int64_t skew_s = 0;      ///< Add to the clock being read.

  bool fired() const {
    return delay_us > 0.0 || stall_us > 0.0 || fail || swap_race ||
           skew_s != 0;
  }
};

/// Sleeps for `us` microseconds (no-op for us <= 0). Hook sites apply
/// Outcome delays through this so the sleep policy lives in one place.
void SleepFor(double us);

/// Evaluates a FaultPlan at hook sites and records every fired fault.
///
/// Thread-safe. Sites with no rules short-circuit on a const lookup
/// table without taking the mutex, so a present-but-irrelevant injector
/// costs one branch per hook.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Advances the (site, shard) hit counter and matches every rule of
  /// the site against the new hit index. Does not sleep — the caller
  /// applies the returned delays (it knows its own lock context).
  Outcome Evaluate(Site site, int64_t shard = -1);

  const FaultPlan& plan() const { return plan_; }
  uint64_t seed() const { return plan_.seed; }

  /// Every fault fired so far, sorted by (site, shard, hit) so two runs
  /// of the same configuration produce byte-identical logs regardless
  /// of thread scheduling.
  std::vector<FaultEvent> Events() const;

  /// One line per fired fault: "ingest.shard[3]#12 stall 500us".
  std::string LogToString() const;

  uint64_t total_fired() const;

 private:
  struct RuleState {
    FaultRule rule;
    obs::Counter* injected = nullptr;  ///< cloudsurv_fault_injected_total.
  };

  FaultPlan plan_;
  std::array<bool, kNumSites> site_has_rules_{};
  mutable std::mutex mu_;
  std::vector<RuleState> rules_;
  /// Hit counters keyed by (site, shard).
  std::array<std::unordered_map<int64_t, uint64_t>, kNumSites> hits_;
  std::vector<FaultEvent> log_;
};

}  // namespace cloudsurv::fault

#endif  // CLOUDSURV_FAULT_FAULT_H_
