#ifndef CLOUDSURV_SURVIVAL_RANDOM_SURVIVAL_FOREST_H_
#define CLOUDSURV_SURVIVAL_RANDOM_SURVIVAL_FOREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/binned_dataset.h"
#include "survival/cox.h"  // CovariateObservation

namespace cloudsurv::survival {

/// Hyper-parameters of the survival forest.
struct SurvivalForestParams {
  int num_trees = 100;
  int max_depth = 8;
  size_t min_samples_leaf = 15;
  /// Features examined per node; <= 0 means ceil(sqrt(d)).
  int max_features = -1;
  /// Candidate thresholds sampled per feature per node (random-split
  /// search keeps the log-rank split evaluation O(k n) per feature).
  int thresholds_per_feature = 8;
  /// Curves are represented on an even grid [0, horizon_days] with
  /// this many points.
  int grid_points = 64;
  double horizon_days = 150.0;
  /// Node-split search. kHistogram bins covariates once per Fit and
  /// samples candidate thresholds from bin boundaries, with left-child
  /// sizes read off cumulative code histograms in O(1) per candidate.
  ml::SplitAlgorithm split_algorithm = ml::SplitAlgorithm::kHistogram;
};

/// Random survival forest (Ishwaran et al. 2008 style): an ensemble of
/// trees whose nodes split by maximizing the two-sample log-rank
/// statistic between children and whose leaves hold Kaplan-Meier
/// curves of their members. The ensemble averages leaf survival
/// curves, yielding a full per-individual lifespan distribution
/// S(t | x) — the natural fusion of the paper's two halves (survival
/// analysis + learned prediction): instead of a fixed 30-day binary
/// question, it answers every "will it live past t?" at once.
class RandomSurvivalForest {
 public:
  RandomSurvivalForest() = default;

  /// Fits the forest on right-censored observations with covariates.
  /// Deterministic per seed. Requires >= 2*min_samples_leaf
  /// observations and at least one event.
  Status Fit(const std::vector<CovariateObservation>& data,
             std::vector<std::string> covariate_names,
             const SurvivalForestParams& params, uint64_t seed);

  bool fitted() const { return !trees_.empty(); }

  /// Ensemble survival probability S(t | x).
  double PredictSurvival(const std::vector<double>& covariates,
                         double time) const;

  /// Full curve on the fitted grid; index i is t = i * horizon/(g-1).
  std::vector<double> PredictCurve(
      const std::vector<double>& covariates) const;

  /// Median predicted lifetime; horizon_days when the curve never
  /// crosses 0.5 (long-lived tail).
  double PredictMedian(const std::vector<double>& covariates) const;

  /// Ishwaran's mortality score: the integral of the predicted
  /// cumulative hazard over the grid. Higher = shorter expected life.
  double PredictMortality(const std::vector<double>& covariates) const;

  /// Harrell's concordance of mortality scores against outcomes.
  double ConcordanceIndex(
      const std::vector<CovariateObservation>& data) const;

  /// Split-importance: total log-rank statistic contributed per
  /// covariate, normalized to sum to 1.
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  const std::vector<std::string>& covariate_names() const {
    return covariate_names_;
  }
  const SurvivalForestParams& params() const { return params_; }
  size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;        ///< -1 for leaves.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<float> survival;  ///< Leaf KM curve on the shared grid.
  };
  struct Tree {
    std::vector<Node> nodes;
    const std::vector<float>& Leaf(const std::vector<double>& x) const;
  };

  /// `binned` is non-null in histogram mode (codes indexed by original
  /// observation row, shared by all trees of this Fit).
  int BuildNode(const std::vector<CovariateObservation>& data,
                const ml::BinnedDataset* binned,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, Rng& rng, Tree* tree);
  std::vector<float> LeafCurve(
      const std::vector<CovariateObservation>& data,
      const std::vector<size_t>& indices, size_t begin, size_t end) const;

  std::vector<Tree> trees_;
  std::vector<double> importances_;
  std::vector<std::string> covariate_names_;
  SurvivalForestParams params_;
};

}  // namespace cloudsurv::survival

#endif  // CLOUDSURV_SURVIVAL_RANDOM_SURVIVAL_FOREST_H_
