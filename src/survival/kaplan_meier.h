#ifndef CLOUDSURV_SURVIVAL_KAPLAN_MEIER_H_
#define CLOUDSURV_SURVIVAL_KAPLAN_MEIER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "survival/survival_data.h"

namespace cloudsurv::survival {

/// One step of a fitted Kaplan-Meier curve, at a distinct event time.
struct KaplanMeierStep {
  double time = 0.0;        ///< Distinct event time t_i.
  size_t at_risk = 0;       ///< n_i: individuals at risk just before t_i.
  size_t events = 0;        ///< d_i: events at t_i.
  size_t censored = 0;      ///< Censorings in (t_{i-1}, t_i].
  double survival = 1.0;    ///< S(t_i) = prod_{j<=i} (1 - d_j/n_j).
  double std_error = 0.0;   ///< Greenwood standard error of S(t_i).
  double ci_lower = 1.0;    ///< Exponential-Greenwood (log-log) 95% CI.
  double ci_upper = 1.0;
};

/// Nonparametric Kaplan-Meier estimate of the survival function
/// S(t) = P[T > t] from right-censored data (paper section 3.2,
/// reference [19]). Mirrors the estimator in the Python Lifelines
/// package the paper uses, including Greenwood variance and log-log
/// confidence intervals.
class KaplanMeierCurve {
 public:
  /// Fits the estimator. Requires non-empty data.
  /// `confidence_level` in (0, 1) controls the CI width (default 95%).
  static Result<KaplanMeierCurve> Fit(const SurvivalData& data,
                                      double confidence_level = 0.95);

  /// The curve's steps at distinct event times, ascending.
  const std::vector<KaplanMeierStep>& steps() const { return steps_; }

  /// S(t): right-continuous step-function lookup. S(t) = 1 before the
  /// first event time.
  double SurvivalAt(double time) const;

  /// Smallest time with S(t) <= 1 - p, i.e. the time by which a fraction
  /// p of the population has experienced the event. Empty when the curve
  /// never drops that far (common with heavy censoring).
  std::optional<double> PercentileTime(double p) const;

  /// Median survival time = PercentileTime(0.5).
  std::optional<double> MedianTime() const { return PercentileTime(0.5); }

  /// Restricted mean survival time: integral of S(t) over [0, horizon].
  double RestrictedMean(double horizon) const;

  /// Number of individuals the curve was fitted on.
  size_t num_subjects() const { return num_subjects_; }
  size_t num_events() const { return num_events_; }

  /// Samples S(t) on an evenly spaced grid [0, max_time] with
  /// `num_points` points; handy for plotting / report tables.
  std::vector<double> Evaluate(double max_time, size_t num_points) const;

  /// Renders "t survival at_risk events" rows, one per step.
  std::string ToTable(size_t max_rows = 30) const;

 private:
  KaplanMeierCurve() = default;

  std::vector<KaplanMeierStep> steps_;
  size_t num_subjects_ = 0;
  size_t num_events_ = 0;
};

}  // namespace cloudsurv::survival

#endif  // CLOUDSURV_SURVIVAL_KAPLAN_MEIER_H_
