#ifndef CLOUDSURV_SURVIVAL_PARAMETRIC_H_
#define CLOUDSURV_SURVIVAL_PARAMETRIC_H_

#include "common/status.h"
#include "stats/distributions.h"
#include "survival/survival_data.h"

namespace cloudsurv::survival {

/// Result of a parametric maximum-likelihood fit on right-censored
/// data. Events contribute the log-density, censored observations the
/// log-survival.
struct ParametricFit {
  double log_likelihood = 0.0;
  double aic = 0.0;       ///< 2k - 2 ln L.
  int num_parameters = 0;
  int iterations = 0;
  bool converged = true;
};

/// Exponential(rate) MLE with right-censoring. Closed form:
/// rate = (#events) / (total observed time).
struct ExponentialFitResult {
  double rate = 0.0;
  ParametricFit fit;
};
Result<ExponentialFitResult> FitExponential(const SurvivalData& data);

/// Weibull(shape, scale) MLE with right-censoring. The profile
/// likelihood reduces to a one-dimensional equation in the shape
/// parameter, solved by Newton's method with a bisection fallback.
/// Shape < 1 indicates infant-mortality-style churn (drop hazard
/// decreasing with age) — the typical finding for cloud databases.
struct WeibullFitResult {
  double shape = 1.0;
  double scale = 1.0;
  ParametricFit fit;
};
Result<WeibullFitResult> FitWeibull(const SurvivalData& data);

/// Log-likelihood of `data` under an arbitrary distribution (density
/// for events, survival for censored observations). Useful to compare
/// parametric candidates by AIC.
double CensoredLogLikelihood(const SurvivalData& data,
                             const stats::Distribution& dist);

}  // namespace cloudsurv::survival

#endif  // CLOUDSURV_SURVIVAL_PARAMETRIC_H_
