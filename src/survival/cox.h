#ifndef CLOUDSURV_SURVIVAL_COX_H_
#define CLOUDSURV_SURVIVAL_COX_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cloudsurv::survival {

/// One individual with covariates for regression-style survival
/// analysis.
struct CovariateObservation {
  double duration = 0.0;            ///< Observation span (days).
  bool observed = false;            ///< Event occurred (database dropped).
  std::vector<double> covariates;   ///< Fixed-length covariate vector.
};

/// Fit controls for the Cox model.
struct CoxOptions {
  int max_iterations = 50;
  double tolerance = 1e-9;          ///< Convergence on the log-likelihood.
  /// L2 penalty on coefficients; a small ridge stabilizes separated or
  /// collinear covariates.
  double ridge = 1e-6;
};

/// Per-covariate inference output.
struct CoxCoefficient {
  std::string name;
  double beta = 0.0;         ///< Log hazard ratio.
  double hazard_ratio = 1.0; ///< exp(beta).
  double std_error = 0.0;    ///< From the inverse information matrix.
  double z = 0.0;            ///< Wald statistic.
  double p_value = 1.0;      ///< Two-sided normal tail.
};

/// Cox proportional-hazards regression with right-censoring and the
/// Breslow approximation for tied event times. The natural "factors"
/// companion to the paper's survival study: instead of comparing KM
/// curves of pre-defined groups, it quantifies each covariate's
/// multiplicative effect on drop hazard with significance.
///
/// Fitting maximizes the partial log-likelihood by Newton-Raphson;
/// standard errors come from the observed information matrix. The
/// baseline cumulative hazard uses Breslow's estimator, enabling
/// per-individual survival predictions S(t | x).
class CoxModel {
 public:
  /// Fits the model. Requires >= 2 observations, at least one event,
  /// equal covariate lengths matching `covariate_names`, and finite
  /// inputs.
  static Result<CoxModel> Fit(
      const std::vector<CovariateObservation>& data,
      std::vector<std::string> covariate_names,
      const CoxOptions& options = CoxOptions());

  const std::vector<CoxCoefficient>& coefficients() const {
    return coefficients_;
  }

  /// Maximized partial log-likelihood and the null (beta = 0) value.
  double log_likelihood() const { return log_likelihood_; }
  double null_log_likelihood() const { return null_log_likelihood_; }

  /// Likelihood-ratio chi-squared statistic against the null model and
  /// its p-value (df = number of covariates).
  double likelihood_ratio_statistic() const {
    return 2.0 * (log_likelihood_ - null_log_likelihood_);
  }
  double likelihood_ratio_p_value() const { return lr_p_value_; }

  int num_iterations() const { return iterations_; }
  bool converged() const { return converged_; }

  /// Linear predictor beta . x.
  double LinearPredictor(const std::vector<double>& covariates) const;

  /// Relative hazard exp(beta . x).
  double RelativeHazard(const std::vector<double>& covariates) const;

  /// Breslow baseline cumulative hazard H0(t) (step function lookup).
  double BaselineCumulativeHazard(double time) const;

  /// Predicted survival S(t | x) = exp(-H0(t) * exp(beta . x)).
  double PredictSurvival(double time,
                         const std::vector<double>& covariates) const;

  /// Harrell's concordance index of the fitted risk scores on `data`:
  /// fraction of comparable pairs where the higher-risk individual
  /// fails first. 0.5 = random, 1.0 = perfect ranking.
  double ConcordanceIndex(
      const std::vector<CovariateObservation>& data) const;

  /// Fixed-width text table of coefficients.
  std::string ToText() const;

 private:
  CoxModel() = default;

  std::vector<CoxCoefficient> coefficients_;
  std::vector<double> beta_;
  double log_likelihood_ = 0.0;
  double null_log_likelihood_ = 0.0;
  double lr_p_value_ = 1.0;
  int iterations_ = 0;
  bool converged_ = false;
  // Breslow baseline: event times with cumulative hazard values.
  std::vector<double> baseline_times_;
  std::vector<double> baseline_hazard_;
};

}  // namespace cloudsurv::survival

#endif  // CLOUDSURV_SURVIVAL_COX_H_
