#include "survival/logrank.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace cloudsurv::survival {

namespace {

struct Tagged {
  double time;
  bool observed;
  int group;
};

// Solves the (k-1)x(k-1) system V x = z in place with partial pivoting;
// returns z' V^{-1} z, or an error when V is (numerically) singular.
Result<double> QuadraticForm(std::vector<std::vector<double>> v,
                             std::vector<double> z) {
  const size_t m = z.size();
  std::vector<double> x = z;
  // Gaussian elimination of [V | x].
  for (size_t col = 0; col < m; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < m; ++r) {
      if (std::fabs(v[r][col]) > std::fabs(v[pivot][col])) pivot = r;
    }
    if (std::fabs(v[pivot][col]) < 1e-12) {
      return Status::InvalidArgument(
          "log-rank variance matrix is singular (a group may have no "
          "overlapping risk sets)");
    }
    std::swap(v[col], v[pivot]);
    std::swap(x[col], x[pivot]);
    for (size_t r = col + 1; r < m; ++r) {
      const double f = v[r][col] / v[col][col];
      for (size_t c = col; c < m; ++c) v[r][c] -= f * v[col][c];
      x[r] -= f * x[col];
    }
  }
  // Back substitution.
  std::vector<double> sol(m);
  for (size_t ri = m; ri-- > 0;) {
    double acc = x[ri];
    for (size_t c = ri + 1; c < m; ++c) acc -= v[ri][c] * sol[c];
    sol[ri] = acc / v[ri][ri];
  }
  double stat = 0.0;
  for (size_t i = 0; i < m; ++i) stat += z[i] * sol[i];
  return stat;
}

}  // namespace

Result<LogRankResult> KSampleLogRankTest(
    const std::vector<SurvivalData>& groups, LogRankWeighting weighting) {
  if (groups.size() < 2) {
    return Status::InvalidArgument("log-rank test needs >= 2 groups");
  }
  const int k = static_cast<int>(groups.size());
  std::vector<Tagged> all;
  for (int g = 0; g < k; ++g) {
    if (groups[g].empty()) {
      return Status::InvalidArgument("log-rank group " + std::to_string(g) +
                                     " is empty");
    }
    for (const Observation& o : groups[g].observations()) {
      all.push_back(Tagged{o.duration, o.observed, g});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.observed && !b.observed;
  });

  std::vector<double> at_risk(k, 0.0);
  for (const Tagged& t : all) at_risk[t.group] += 1.0;
  double total_at_risk = static_cast<double>(all.size());

  LogRankResult result;
  result.observed.assign(k, 0.0);
  result.expected.assign(k, 0.0);
  std::vector<double> z(k - 1, 0.0);
  std::vector<std::vector<double>> v(k - 1, std::vector<double>(k - 1, 0.0));

  double pooled_survival = 1.0;  // left limit S(t-) for Peto-Peto weights
  size_t i = 0;
  while (i < all.size()) {
    const double t = all[i].time;
    std::vector<double> d_g(k, 0.0);
    std::vector<double> c_g(k, 0.0);
    double d_total = 0.0;
    double removed = 0.0;
    while (i < all.size() && all[i].time == t) {
      if (all[i].observed) {
        d_g[all[i].group] += 1.0;
        d_total += 1.0;
      } else {
        c_g[all[i].group] += 1.0;
      }
      removed += 1.0;
      ++i;
    }
    if (d_total > 0.0 && total_at_risk > 0.0) {
      double w = 1.0;
      switch (weighting) {
        case LogRankWeighting::kLogRank:
          w = 1.0;
          break;
        case LogRankWeighting::kWilcoxon:
          w = total_at_risk;
          break;
        case LogRankWeighting::kPetoPeto:
          w = pooled_survival;
          break;
      }
      for (int g = 0; g < k; ++g) {
        const double e_g = d_total * at_risk[g] / total_at_risk;
        result.observed[g] += d_g[g];
        result.expected[g] += e_g;
        if (g < k - 1) z[g] += w * (d_g[g] - e_g);
      }
      if (total_at_risk > 1.0) {
        const double hyper =
            d_total * (total_at_risk - d_total) / (total_at_risk - 1.0);
        for (int g = 0; g < k - 1; ++g) {
          for (int h = 0; h < k - 1; ++h) {
            const double delta = (g == h) ? 1.0 : 0.0;
            v[g][h] += w * w * hyper * (at_risk[g] / total_at_risk) *
                       (delta - at_risk[h] / total_at_risk);
          }
        }
      }
      pooled_survival *= 1.0 - d_total / total_at_risk;
    }
    for (int g = 0; g < k; ++g) at_risk[g] -= d_g[g] + c_g[g];
    total_at_risk -= removed;
  }

  CLOUDSURV_ASSIGN_OR_RETURN(result.statistic, QuadraticForm(v, z));
  result.degrees_of_freedom = static_cast<double>(k - 1);
  result.p_value =
      stats::ChiSquaredSurvival(result.statistic, result.degrees_of_freedom);
  return result;
}

Result<LogRankResult> StratifiedLogRankTest(
    const std::vector<std::pair<SurvivalData, SurvivalData>>& strata) {
  if (strata.empty()) {
    return Status::InvalidArgument("stratified test needs >= 1 stratum");
  }
  double z = 0.0;
  double variance = 0.0;
  LogRankResult result;
  result.observed.assign(2, 0.0);
  result.expected.assign(2, 0.0);
  for (size_t s = 0; s < strata.size(); ++s) {
    const auto& [a, b] = strata[s];
    if (a.empty() || b.empty()) {
      return Status::InvalidArgument("stratum " + std::to_string(s) +
                                     " is missing a group");
    }
    // Reuse the two-sample machinery per stratum; accumulate its
    // numerator and variance rather than its chi-squared.
    std::vector<Tagged> all;
    all.reserve(a.size() + b.size());
    for (const Observation& o : a.observations()) {
      all.push_back(Tagged{o.duration, o.observed, 0});
    }
    for (const Observation& o : b.observations()) {
      all.push_back(Tagged{o.duration, o.observed, 1});
    }
    std::sort(all.begin(), all.end(),
              [](const Tagged& x, const Tagged& y) {
                if (x.time != y.time) return x.time < y.time;
                return x.observed && !y.observed;
              });
    double n_a = static_cast<double>(a.size());
    double n_total = static_cast<double>(all.size());
    size_t i = 0;
    while (i < all.size()) {
      const double t = all[i].time;
      double d_total = 0.0, d_a = 0.0, removed_a = 0.0, removed = 0.0;
      while (i < all.size() && all[i].time == t) {
        if (all[i].observed) {
          d_total += 1.0;
          if (all[i].group == 0) d_a += 1.0;
        }
        removed += 1.0;
        if (all[i].group == 0) removed_a += 1.0;
        ++i;
      }
      if (d_total > 0.0 && n_total > 0.0) {
        const double e_a = d_total * n_a / n_total;
        result.observed[0] += d_a;
        result.observed[1] += d_total - d_a;
        result.expected[0] += e_a;
        result.expected[1] += d_total - e_a;
        z += d_a - e_a;
        if (n_total > 1.0) {
          variance += d_total * (n_total - d_total) / (n_total - 1.0) *
                      (n_a / n_total) * (1.0 - n_a / n_total);
        }
      }
      n_total -= removed;
      n_a -= removed_a;
    }
  }
  if (variance <= 0.0) {
    return Status::InvalidArgument(
        "stratified log-rank variance degenerate");
  }
  result.statistic = z * z / variance;
  result.degrees_of_freedom = 1.0;
  result.p_value = stats::ChiSquaredSurvival(result.statistic, 1.0);
  return result;
}

Result<LogRankResult> LogRankTest(const SurvivalData& group_a,
                                  const SurvivalData& group_b,
                                  LogRankWeighting weighting) {
  std::vector<SurvivalData> groups;
  groups.push_back(group_a);
  groups.push_back(group_b);
  return KSampleLogRankTest(groups, weighting);
}

}  // namespace cloudsurv::survival
