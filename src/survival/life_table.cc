#include "survival/life_table.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace cloudsurv::survival {

Result<LifeTable> LifeTable::Build(const SurvivalData& data,
                                   double interval_width, double horizon) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot build life table on empty data");
  }
  if (interval_width <= 0.0 || horizon <= 0.0) {
    return Status::InvalidArgument(
        "life table needs positive interval width and horizon");
  }
  const size_t num_intervals =
      static_cast<size_t>(std::ceil(horizon / interval_width));

  std::vector<size_t> events(num_intervals, 0);
  std::vector<size_t> censored(num_intervals, 0);
  size_t beyond = 0;  // subjects observed past the horizon
  for (const Observation& o : data.observations()) {
    size_t idx = static_cast<size_t>(o.duration / interval_width);
    if (o.duration >= horizon || idx >= num_intervals) {
      ++beyond;
      continue;
    }
    if (o.observed) {
      ++events[idx];
    } else {
      ++censored[idx];
    }
  }
  // Subjects alive past the horizon are censored in the final interval.
  if (num_intervals > 0) censored[num_intervals - 1] += beyond;

  LifeTable table;
  size_t entering = data.size();
  double cumulative = 1.0;
  for (size_t i = 0; i < num_intervals; ++i) {
    LifeTableRow row;
    row.interval_start = interval_width * static_cast<double>(i);
    row.interval_end = interval_width * static_cast<double>(i + 1);
    row.entering = entering;
    row.events = events[i];
    row.censored = censored[i];
    row.effective_at_risk =
        static_cast<double>(entering) - static_cast<double>(censored[i]) / 2.0;
    if (row.effective_at_risk > 0.0) {
      row.conditional_survival =
          1.0 - static_cast<double>(events[i]) / row.effective_at_risk;
      row.hazard_rate = static_cast<double>(events[i]) /
                        (row.effective_at_risk * interval_width);
    } else {
      row.conditional_survival = 1.0;
      row.hazard_rate = 0.0;
    }
    cumulative *= row.conditional_survival;
    cumulative = std::clamp(cumulative, 0.0, 1.0);
    row.cumulative_survival = cumulative;
    table.rows_.push_back(row);
    entering -= events[i] + censored[i];
  }
  return table;
}

double LifeTable::SurvivalAt(double time) const {
  double s = 1.0;
  for (const LifeTableRow& row : rows_) {
    if (row.interval_end > time) break;
    s = row.cumulative_survival;
  }
  return s;
}

std::string LifeTable::ToText() const {
  std::string out =
      "interval\tentering\tevents\tcensored\tcond_S\tcum_S\thazard\n";
  for (const LifeTableRow& r : rows_) {
    out += "[" + FormatDouble(r.interval_start, 1) + ", " +
           FormatDouble(r.interval_end, 1) + ")\t" +
           std::to_string(r.entering) + "\t" + std::to_string(r.events) +
           "\t" + std::to_string(r.censored) + "\t" +
           FormatDouble(r.conditional_survival, 4) + "\t" +
           FormatDouble(r.cumulative_survival, 4) + "\t" +
           FormatDouble(r.hazard_rate, 5) + "\n";
  }
  return out;
}

}  // namespace cloudsurv::survival
