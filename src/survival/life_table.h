#ifndef CLOUDSURV_SURVIVAL_LIFE_TABLE_H_
#define CLOUDSURV_SURVIVAL_LIFE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "survival/survival_data.h"

namespace cloudsurv::survival {

/// One interval row of an actuarial life table.
struct LifeTableRow {
  double interval_start = 0.0;
  double interval_end = 0.0;
  size_t entering = 0;        ///< Alive at interval start.
  size_t events = 0;          ///< Events during the interval.
  size_t censored = 0;        ///< Censored during the interval.
  double effective_at_risk = 0.0;  ///< entering - censored / 2.
  double conditional_survival = 1.0;  ///< 1 - events / effective_at_risk.
  double cumulative_survival = 1.0;   ///< Product up to this interval.
  double hazard_rate = 0.0;   ///< events / (effective_at_risk * width).
};

/// Actuarial (interval) life table with the classic half-censoring
/// adjustment. Coarser than KM but gives per-interval hazard rates that
/// read naturally in reports ("what fraction of week-3 survivors drop in
/// week 4?").
class LifeTable {
 public:
  /// Builds a table over [0, horizon) with equal `interval_width` bins.
  /// Subjects surviving past the horizon count as censored in the final
  /// interval. Requires positive width/horizon and non-empty data.
  static Result<LifeTable> Build(const SurvivalData& data,
                                 double interval_width, double horizon);

  const std::vector<LifeTableRow>& rows() const { return rows_; }

  /// Cumulative survival at the end of the interval containing `time`
  /// (1.0 before the first interval closes).
  double SurvivalAt(double time) const;

  /// Renders a fixed-width text table.
  std::string ToText() const;

 private:
  LifeTable() = default;
  std::vector<LifeTableRow> rows_;
};

}  // namespace cloudsurv::survival

#endif  // CLOUDSURV_SURVIVAL_LIFE_TABLE_H_
