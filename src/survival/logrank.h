#ifndef CLOUDSURV_SURVIVAL_LOGRANK_H_
#define CLOUDSURV_SURVIVAL_LOGRANK_H_

#include <vector>

#include "common/status.h"
#include "survival/survival_data.h"

namespace cloudsurv::survival {

/// Weighting schemes for the family of weighted log-rank tests.
enum class LogRankWeighting {
  /// w_i = 1: the standard log-rank test (paper section 5.2, ref [20]).
  kLogRank,
  /// w_i = n_i (total at risk): Gehan-Breslow generalized Wilcoxon;
  /// emphasizes early differences.
  kWilcoxon,
  /// w_i = S(t_i-): Peto-Peto; also early-weighted but more robust to
  /// differing censoring patterns.
  kPetoPeto,
};

/// Result of a (weighted) log-rank hypothesis test. The null hypothesis
/// is that all groups share the same survival distribution.
struct LogRankResult {
  double statistic = 0.0;   ///< Chi-squared test statistic.
  double degrees_of_freedom = 0.0;  ///< k - 1 for k groups.
  double p_value = 1.0;     ///< Upper-tail chi-squared probability.
  /// Per-group observed and expected event counts (unweighted), for
  /// reporting.
  std::vector<double> observed;
  std::vector<double> expected;

  /// Convenience: significance at the conventional 0.05 level.
  bool significant_at_05() const { return p_value < 0.05; }
};

/// Two-sample (weighted) log-rank test.
Result<LogRankResult> LogRankTest(
    const SurvivalData& group_a, const SurvivalData& group_b,
    LogRankWeighting weighting = LogRankWeighting::kLogRank);

/// K-sample (weighted) log-rank test; requires >= 2 non-empty groups.
/// The statistic is (O-E)' V^{-1} (O-E) over the first k-1 groups, with
/// V the hypergeometric variance-covariance accumulated across event
/// times.
Result<LogRankResult> KSampleLogRankTest(
    const std::vector<SurvivalData>& groups,
    LogRankWeighting weighting = LogRankWeighting::kLogRank);

/// Stratified two-sample log-rank test: each stratum (e.g. one study
/// region) contributes its own risk sets; (O - E) and the variance are
/// summed across strata before forming the chi-squared statistic. This
/// is the standard way to test "do the groups differ?" while
/// controlling for a confounder — here, pooling the three regions
/// without letting between-region differences masquerade as a group
/// effect. Every stratum must contain both groups, non-empty.
Result<LogRankResult> StratifiedLogRankTest(
    const std::vector<std::pair<SurvivalData, SurvivalData>>& strata);

}  // namespace cloudsurv::survival

#endif  // CLOUDSURV_SURVIVAL_LOGRANK_H_
