#include "survival/nelson_aalen.h"

#include <algorithm>

namespace cloudsurv::survival {

Result<NelsonAalenCurve> NelsonAalenCurve::Fit(const SurvivalData& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit Nelson-Aalen on empty data");
  }
  std::vector<Observation> obs = data.observations();
  std::sort(obs.begin(), obs.end(),
            [](const Observation& a, const Observation& b) {
              if (a.duration != b.duration) return a.duration < b.duration;
              return a.observed && !b.observed;
            });

  NelsonAalenCurve curve;
  size_t at_risk = obs.size();
  double hazard = 0.0;
  double variance = 0.0;
  size_t i = 0;
  while (i < obs.size()) {
    const double t = obs[i].duration;
    size_t events = 0;
    size_t censored = 0;
    while (i < obs.size() && obs[i].duration == t) {
      if (obs[i].observed) {
        ++events;
      } else {
        ++censored;
      }
      ++i;
    }
    if (events > 0) {
      const double n = static_cast<double>(at_risk);
      hazard += static_cast<double>(events) / n;
      variance += static_cast<double>(events) / (n * n);
      NelsonAalenStep step;
      step.time = t;
      step.at_risk = at_risk;
      step.events = events;
      step.cumulative_hazard = hazard;
      step.variance = variance;
      curve.steps_.push_back(step);
    }
    at_risk -= events + censored;
  }
  return curve;
}

double NelsonAalenCurve::CumulativeHazardAt(double time) const {
  double h = 0.0;
  for (const NelsonAalenStep& step : steps_) {
    if (step.time > time) break;
    h = step.cumulative_hazard;
  }
  return h;
}

double NelsonAalenCurve::SmoothedHazard(double time,
                                        double half_window) const {
  const double lo = std::max(0.0, time - half_window);
  const double hi = time + half_window;
  if (hi <= lo) return 0.0;
  return (CumulativeHazardAt(hi) - CumulativeHazardAt(lo)) / (hi - lo);
}

}  // namespace cloudsurv::survival
