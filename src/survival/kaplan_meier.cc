#include "survival/kaplan_meier.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "stats/special_functions.h"

namespace cloudsurv::survival {

Result<KaplanMeierCurve> KaplanMeierCurve::Fit(const SurvivalData& data,
                                               double confidence_level) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit Kaplan-Meier on empty data");
  }
  if (!(confidence_level > 0.0 && confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence level must be in (0, 1)");
  }

  std::vector<Observation> obs = data.observations();
  std::sort(obs.begin(), obs.end(),
            [](const Observation& a, const Observation& b) {
              if (a.duration != b.duration) return a.duration < b.duration;
              // Events before censorings at ties: a subject censored at t
              // is still at risk for an event at t.
              return a.observed && !b.observed;
            });

  KaplanMeierCurve curve;
  curve.num_subjects_ = obs.size();
  curve.num_events_ = data.num_events();

  const double z =
      stats::NormalQuantile(0.5 + confidence_level / 2.0);

  size_t at_risk = obs.size();
  double survival = 1.0;
  double greenwood_sum = 0.0;  // sum d_i / (n_i (n_i - d_i))
  size_t i = 0;
  size_t censored_pending = 0;
  while (i < obs.size()) {
    const double t = obs[i].duration;
    size_t events = 0;
    size_t censored = 0;
    while (i < obs.size() && obs[i].duration == t) {
      if (obs[i].observed) {
        ++events;
      } else {
        ++censored;
      }
      ++i;
    }
    if (events == 0) {
      // Pure censoring time: no curve step, but risk set shrinks.
      at_risk -= censored;
      censored_pending += censored;
      continue;
    }
    KaplanMeierStep step;
    step.time = t;
    step.at_risk = at_risk;
    step.events = events;
    step.censored = censored_pending + censored;
    censored_pending = 0;
    survival *= 1.0 - static_cast<double>(events) /
                          static_cast<double>(at_risk);
    // Clamp FP noise; survival can hit exactly 0 when the last subject
    // at risk has an event.
    survival = std::max(survival, 0.0);
    if (at_risk > events) {
      greenwood_sum += static_cast<double>(events) /
                       (static_cast<double>(at_risk) *
                        static_cast<double>(at_risk - events));
    }
    step.survival = survival;
    step.std_error = survival * std::sqrt(greenwood_sum);
    // Exponential Greenwood ("log-log") interval, the Lifelines default:
    // bounds are S^{exp(+-z * se(log(-log S)))}; stays inside [0, 1].
    if (survival > 0.0 && survival < 1.0) {
      const double log_neg_log = std::log(-std::log(survival));
      const double se_loglog =
          std::sqrt(greenwood_sum) / std::fabs(std::log(survival));
      const double lo = log_neg_log + z * se_loglog;
      const double hi = log_neg_log - z * se_loglog;
      step.ci_lower = std::exp(-std::exp(lo));
      step.ci_upper = std::exp(-std::exp(hi));
    } else {
      step.ci_lower = survival;
      step.ci_upper = survival;
    }
    curve.steps_.push_back(step);
    at_risk -= events + censored;
  }
  return curve;
}

double KaplanMeierCurve::SurvivalAt(double time) const {
  // Last step with step.time <= time.
  double s = 1.0;
  for (const KaplanMeierStep& step : steps_) {
    if (step.time > time) break;
    s = step.survival;
  }
  return s;
}

std::optional<double> KaplanMeierCurve::PercentileTime(double p) const {
  const double target = 1.0 - p;
  for (const KaplanMeierStep& step : steps_) {
    if (step.survival <= target + 1e-12) return step.time;
  }
  return std::nullopt;
}

double KaplanMeierCurve::RestrictedMean(double horizon) const {
  double area = 0.0;
  double prev_time = 0.0;
  double prev_survival = 1.0;
  for (const KaplanMeierStep& step : steps_) {
    if (step.time >= horizon) break;
    area += prev_survival * (step.time - prev_time);
    prev_time = step.time;
    prev_survival = step.survival;
  }
  area += prev_survival * (horizon - prev_time);
  return area;
}

std::vector<double> KaplanMeierCurve::Evaluate(double max_time,
                                               size_t num_points) const {
  std::vector<double> out;
  if (num_points == 0) return out;
  out.reserve(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    const double t = num_points == 1
                         ? 0.0
                         : max_time * static_cast<double>(i) /
                               static_cast<double>(num_points - 1);
    out.push_back(SurvivalAt(t));
  }
  return out;
}

std::string KaplanMeierCurve::ToTable(size_t max_rows) const {
  std::string out = "time\tat_risk\tevents\tS(t)\t95% CI\n";
  const size_t n = steps_.size();
  const size_t stride = n <= max_rows ? 1 : (n + max_rows - 1) / max_rows;
  for (size_t i = 0; i < n; i += stride) {
    const KaplanMeierStep& s = steps_[i];
    out += FormatDouble(s.time, 2) + "\t" + std::to_string(s.at_risk) + "\t" +
           std::to_string(s.events) + "\t" + FormatDouble(s.survival, 4) +
           "\t[" + FormatDouble(s.ci_lower, 4) + ", " +
           FormatDouble(s.ci_upper, 4) + "]\n";
  }
  return out;
}

}  // namespace cloudsurv::survival
