#include "survival/cox.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "stats/special_functions.h"

namespace cloudsurv::survival {

namespace {

// Solves A x = b for symmetric positive-definite A (Gaussian
// elimination with partial pivoting; A and b are copied).
Result<std::vector<double>> SolveLinearSystem(
    std::vector<std::vector<double>> a, std::vector<double> b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::InvalidArgument(
          "singular information matrix (collinear covariates?)");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a[ri][c] * x[c];
    x[ri] = acc / a[ri][ri];
  }
  return x;
}

// Inverts a symmetric positive-definite matrix by solving against unit
// vectors.
Result<std::vector<std::vector<double>>> InvertMatrix(
    const std::vector<std::vector<double>>& a) {
  const size_t n = a.size();
  std::vector<std::vector<double>> inv(n, std::vector<double>(n, 0.0));
  for (size_t col = 0; col < n; ++col) {
    std::vector<double> e(n, 0.0);
    e[col] = 1.0;
    CLOUDSURV_ASSIGN_OR_RETURN(std::vector<double> x,
                               SolveLinearSystem(a, e));
    for (size_t r = 0; r < n; ++r) inv[r][col] = x[r];
  }
  return inv;
}

struct LikelihoodParts {
  double log_likelihood = 0.0;
  std::vector<double> gradient;
  std::vector<std::vector<double>> information;  // negative Hessian
};

// Evaluates the Breslow partial log-likelihood, gradient and
// information at `beta`. `order` is indices sorted by duration
// descending (ties: any order; risk sets accumulate before events at a
// time are processed).
LikelihoodParts EvaluatePartialLikelihood(
    const std::vector<CovariateObservation>& data,
    const std::vector<size_t>& order, const std::vector<double>& beta,
    double ridge) {
  const size_t p = beta.size();
  LikelihoodParts parts;
  parts.gradient.assign(p, 0.0);
  parts.information.assign(p, std::vector<double>(p, 0.0));

  double s0 = 0.0;
  std::vector<double> s1(p, 0.0);
  std::vector<std::vector<double>> s2(p, std::vector<double>(p, 0.0));

  size_t i = 0;
  const size_t n = order.size();
  while (i < n) {
    const double t = data[order[i]].duration;
    // Add everyone with duration == t to the risk set (durations are
    // descending, so all with duration > t are already included).
    size_t j = i;
    while (j < n && data[order[j]].duration == t) {
      const auto& obs = data[order[j]];
      const double eta =
          std::inner_product(beta.begin(), beta.end(),
                             obs.covariates.begin(), 0.0);
      const double w = std::exp(eta);
      s0 += w;
      for (size_t a = 0; a < p; ++a) {
        s1[a] += w * obs.covariates[a];
        for (size_t b = a; b < p; ++b) {
          s2[a][b] += w * obs.covariates[a] * obs.covariates[b];
        }
      }
      ++j;
    }
    // Process the events at time t (Breslow: one shared risk set).
    size_t d = 0;
    for (size_t k = i; k < j; ++k) {
      const auto& obs = data[order[k]];
      if (!obs.observed) continue;
      ++d;
      const double eta =
          std::inner_product(beta.begin(), beta.end(),
                             obs.covariates.begin(), 0.0);
      parts.log_likelihood += eta;
      for (size_t a = 0; a < p; ++a) {
        parts.gradient[a] += obs.covariates[a];
      }
    }
    if (d > 0 && s0 > 0.0) {
      parts.log_likelihood -= static_cast<double>(d) * std::log(s0);
      for (size_t a = 0; a < p; ++a) {
        const double mean_a = s1[a] / s0;
        parts.gradient[a] -= static_cast<double>(d) * mean_a;
        for (size_t b = a; b < p; ++b) {
          const double mean_b = s1[b] / s0;
          const double info =
              static_cast<double>(d) * (s2[a][b] / s0 - mean_a * mean_b);
          parts.information[a][b] += info;
          if (a != b) parts.information[b][a] += info;
        }
      }
    }
    i = j;
  }
  // Ridge penalty: ll -= ridge/2 |beta|^2.
  for (size_t a = 0; a < p; ++a) {
    parts.log_likelihood -= 0.5 * ridge * beta[a] * beta[a];
    parts.gradient[a] -= ridge * beta[a];
    parts.information[a][a] += ridge;
  }
  return parts;
}

}  // namespace

Result<CoxModel> CoxModel::Fit(const std::vector<CovariateObservation>& data,
                               std::vector<std::string> covariate_names,
                               const CoxOptions& options) {
  if (data.size() < 2) {
    return Status::InvalidArgument("Cox model needs >= 2 observations");
  }
  const size_t p = covariate_names.size();
  if (p == 0) {
    return Status::InvalidArgument("Cox model needs >= 1 covariate");
  }
  size_t events = 0;
  for (const auto& obs : data) {
    if (obs.covariates.size() != p) {
      return Status::InvalidArgument(
          "covariate vector length mismatches covariate names");
    }
    if (!std::isfinite(obs.duration) || obs.duration < 0.0) {
      return Status::InvalidArgument("invalid duration");
    }
    for (double v : obs.covariates) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite covariate");
      }
    }
    if (obs.observed) ++events;
  }
  if (events == 0) {
    return Status::InvalidArgument(
        "Cox model needs at least one observed event");
  }

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return data[a].duration > data[b].duration;
  });

  CoxModel model;
  std::vector<double> beta(p, 0.0);
  LikelihoodParts parts =
      EvaluatePartialLikelihood(data, order, beta, options.ridge);
  model.null_log_likelihood_ = parts.log_likelihood;

  double last_ll = parts.log_likelihood;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    model.iterations_ = iter + 1;
    auto step = SolveLinearSystem(parts.information, parts.gradient);
    if (!step.ok()) return step.status();
    // Newton step with halving on likelihood decrease.
    double scale = 1.0;
    std::vector<double> candidate(p);
    LikelihoodParts candidate_parts;
    bool improved = false;
    for (int halving = 0; halving < 20; ++halving) {
      for (size_t a = 0; a < p; ++a) {
        candidate[a] = beta[a] + scale * (*step)[a];
      }
      candidate_parts =
          EvaluatePartialLikelihood(data, order, candidate, options.ridge);
      if (candidate_parts.log_likelihood >= last_ll - 1e-13) {
        improved = true;
        break;
      }
      scale *= 0.5;
    }
    if (!improved) break;
    beta = candidate;
    parts = std::move(candidate_parts);
    if (std::fabs(parts.log_likelihood - last_ll) < options.tolerance) {
      model.converged_ = true;
      last_ll = parts.log_likelihood;
      break;
    }
    last_ll = parts.log_likelihood;
  }
  model.log_likelihood_ = last_ll;
  model.beta_ = beta;
  model.lr_p_value_ = stats::ChiSquaredSurvival(
      model.likelihood_ratio_statistic(), static_cast<double>(p));

  // Standard errors from the inverse information.
  auto covariance = InvertMatrix(parts.information);
  model.coefficients_.resize(p);
  for (size_t a = 0; a < p; ++a) {
    CoxCoefficient& c = model.coefficients_[a];
    c.name = covariate_names[a];
    c.beta = beta[a];
    c.hazard_ratio = std::exp(beta[a]);
    if (covariance.ok() && (*covariance)[a][a] > 0.0) {
      c.std_error = std::sqrt((*covariance)[a][a]);
      c.z = c.beta / c.std_error;
      c.p_value = 2.0 * (1.0 - stats::NormalCdf(std::fabs(c.z)));
    }
  }

  // Breslow baseline cumulative hazard at the fitted beta, ascending in
  // time: H0(t) = sum_{t_i <= t} d_i / S0(t_i).
  {
    double s0 = 0.0;
    std::vector<std::pair<double, double>> increments;  // (time, d/S0)
    size_t i = 0;
    const size_t n = order.size();
    while (i < n) {
      const double t = data[order[i]].duration;
      size_t j = i;
      size_t d = 0;
      while (j < n && data[order[j]].duration == t) {
        const auto& obs = data[order[j]];
        s0 += model.RelativeHazard(obs.covariates);
        if (obs.observed) ++d;
        ++j;
      }
      if (d > 0 && s0 > 0.0) {
        increments.emplace_back(t, static_cast<double>(d) / s0);
      }
      i = j;
    }
    std::sort(increments.begin(), increments.end());
    double h = 0.0;
    for (const auto& [t, inc] : increments) {
      h += inc;
      model.baseline_times_.push_back(t);
      model.baseline_hazard_.push_back(h);
    }
  }
  return model;
}

double CoxModel::LinearPredictor(const std::vector<double>& covariates) const {
  return std::inner_product(beta_.begin(), beta_.end(), covariates.begin(),
                            0.0);
}

double CoxModel::RelativeHazard(const std::vector<double>& covariates) const {
  return std::exp(LinearPredictor(covariates));
}

double CoxModel::BaselineCumulativeHazard(double time) const {
  const auto it = std::upper_bound(baseline_times_.begin(),
                                   baseline_times_.end(), time);
  if (it == baseline_times_.begin()) return 0.0;
  return baseline_hazard_[static_cast<size_t>(it - baseline_times_.begin()) -
                          1];
}

double CoxModel::PredictSurvival(double time,
                                 const std::vector<double>& covariates) const {
  return std::exp(-BaselineCumulativeHazard(time) *
                  RelativeHazard(covariates));
}

double CoxModel::ConcordanceIndex(
    const std::vector<CovariateObservation>& data) const {
  // O(n^2) over comparable pairs; adequate for study-sized cohorts.
  double concordant = 0.0;
  double comparable = 0.0;
  std::vector<double> risk(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    risk[i] = LinearPredictor(data[i].covariates);
  }
  for (size_t i = 0; i < data.size(); ++i) {
    if (!data[i].observed) continue;
    for (size_t j = 0; j < data.size(); ++j) {
      if (i == j) continue;
      // i failed at duration_i; j is comparable if it survived longer
      // (event later or censored later).
      if (data[j].duration <= data[i].duration) continue;
      comparable += 1.0;
      if (risk[i] > risk[j]) {
        concordant += 1.0;
      } else if (risk[i] == risk[j]) {
        concordant += 0.5;
      }
    }
  }
  return comparable == 0.0 ? 0.5 : concordant / comparable;
}

std::string CoxModel::ToText() const {
  std::string out =
      "covariate\tbeta\tHR\tse\tz\tp\n";
  for (const auto& c : coefficients_) {
    out += c.name + "\t" + FormatDouble(c.beta, 4) + "\t" +
           FormatDouble(c.hazard_ratio, 3) + "\t" +
           FormatDouble(c.std_error, 4) + "\t" + FormatDouble(c.z, 2) +
           "\t" + FormatDouble(c.p_value, 5) + "\n";
  }
  out += "log-likelihood " + FormatDouble(log_likelihood_, 2) + " (null " +
         FormatDouble(null_log_likelihood_, 2) + "), LR chi2 " +
         FormatDouble(likelihood_ratio_statistic(), 1) + ", p " +
         FormatDouble(lr_p_value_, 6) + "\n";
  return out;
}

}  // namespace cloudsurv::survival
