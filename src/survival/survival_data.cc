#include "survival/survival_data.h"

#include <algorithm>
#include <cmath>

namespace cloudsurv::survival {

Result<SurvivalData> SurvivalData::Make(
    std::vector<Observation> observations) {
  for (const Observation& o : observations) {
    if (!std::isfinite(o.duration) || o.duration < 0.0) {
      return Status::InvalidArgument(
          "survival durations must be finite and non-negative");
    }
  }
  return SurvivalData(std::move(observations));
}

Result<SurvivalData> SurvivalData::FromArrays(
    const std::vector<double>& durations, const std::vector<bool>& observed) {
  if (durations.size() != observed.size()) {
    return Status::InvalidArgument(
        "durations and observed flags must have equal length");
  }
  std::vector<Observation> obs(durations.size());
  for (size_t i = 0; i < durations.size(); ++i) {
    obs[i] = Observation{durations[i], static_cast<bool>(observed[i])};
  }
  return Make(std::move(obs));
}

SurvivalData::SurvivalData(std::vector<Observation> observations)
    : observations_(std::move(observations)) {
  for (const Observation& o : observations_) {
    if (o.observed) ++num_events_;
    max_duration_ = std::max(max_duration_, o.duration);
  }
}

}  // namespace cloudsurv::survival
