#include "survival/random_survival_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"

namespace cloudsurv::survival {

namespace {

// One node member, presorted by duration for O(n) log-rank scans.
struct Member {
  double duration;
  bool observed;
  size_t row;
};

// Two-sample log-rank chi-squared statistic over presorted members,
// with group membership decided by `in_left`. Returns 0 when a group is
// empty or the variance degenerates.
template <typename InLeft>
double LogRankStatistic(const std::vector<Member>& members,
                        const InLeft& in_left) {
  double n_left = 0.0;
  for (const Member& m : members) {
    if (in_left(m.row)) n_left += 1.0;
  }
  double n_total = static_cast<double>(members.size());
  double n_right = n_total - n_left;
  if (n_left == 0.0 || n_right == 0.0) return 0.0;

  double observed_minus_expected = 0.0;
  double variance = 0.0;
  size_t i = 0;
  while (i < members.size()) {
    const double t = members[i].duration;
    double d_total = 0.0, d_left = 0.0;
    double removed_left = 0.0, removed_total = 0.0;
    while (i < members.size() && members[i].duration == t) {
      const bool left = in_left(members[i].row);
      if (members[i].observed) {
        d_total += 1.0;
        if (left) d_left += 1.0;
      }
      removed_total += 1.0;
      if (left) removed_left += 1.0;
      ++i;
    }
    if (d_total > 0.0 && n_total > 1.0) {
      const double p_left = n_left / n_total;
      observed_minus_expected += d_left - d_total * p_left;
      variance += d_total * (n_total - d_total) / (n_total - 1.0) *
                  p_left * (1.0 - p_left);
    }
    n_total -= removed_total;
    n_left -= removed_left;
  }
  if (variance <= 0.0) return 0.0;
  return observed_minus_expected * observed_minus_expected / variance;
}

}  // namespace

const std::vector<float>& RandomSurvivalForest::Tree::Leaf(
    const std::vector<double>& x) const {
  const Node* node = &nodes[0];
  while (node->feature >= 0) {
    node = x[static_cast<size_t>(node->feature)] <= node->threshold
               ? &nodes[static_cast<size_t>(node->left)]
               : &nodes[static_cast<size_t>(node->right)];
  }
  return node->survival;
}

std::vector<float> RandomSurvivalForest::LeafCurve(
    const std::vector<CovariateObservation>& data,
    const std::vector<size_t>& indices, size_t begin, size_t end) const {
  // Kaplan-Meier over the leaf members, sampled on the shared grid.
  std::vector<Member> members;
  members.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    members.push_back(Member{data[indices[i]].duration,
                             data[indices[i]].observed, indices[i]});
  }
  std::sort(members.begin(), members.end(),
            [](const Member& a, const Member& b) {
              return a.duration < b.duration;
            });
  const int g = params_.grid_points;
  std::vector<float> curve(static_cast<size_t>(g), 1.0f);
  double at_risk = static_cast<double>(members.size());
  double survival = 1.0;
  size_t i = 0;
  const double step =
      params_.horizon_days / static_cast<double>(g - 1);
  int grid_index = 0;
  while (i < members.size()) {
    const double t = members[i].duration;
    double events = 0.0, removed = 0.0;
    while (i < members.size() && members[i].duration == t) {
      if (members[i].observed) events += 1.0;
      removed += 1.0;
      ++i;
    }
    if (events > 0.0 && at_risk > 0.0) {
      // Fill grid points strictly before this event time with the
      // running survival.
      while (grid_index < g &&
             static_cast<double>(grid_index) * step < t) {
        curve[static_cast<size_t>(grid_index)] =
            static_cast<float>(survival);
        ++grid_index;
      }
      survival *= 1.0 - events / at_risk;
    }
    at_risk -= removed;
  }
  for (; grid_index < g; ++grid_index) {
    curve[static_cast<size_t>(grid_index)] = static_cast<float>(survival);
  }
  return curve;
}

int RandomSurvivalForest::BuildNode(
    const std::vector<CovariateObservation>& data,
    const ml::BinnedDataset* binned, std::vector<size_t>& indices,
    size_t begin, size_t end, int depth, Rng& rng, Tree* tree) {
  const size_t n = end - begin;

  auto make_leaf = [&]() {
    Node leaf;
    leaf.survival = LeafCurve(data, indices, begin, end);
    tree->nodes.push_back(std::move(leaf));
    return static_cast<int>(tree->nodes.size() - 1);
  };
  if (depth >= params_.max_depth || n < 2 * params_.min_samples_leaf) {
    return make_leaf();
  }

  // Presort node members by duration for O(n) log-rank scans.
  std::vector<Member> members;
  members.reserve(n);
  size_t events_here = 0;
  for (size_t i = begin; i < end; ++i) {
    members.push_back(Member{data[indices[i]].duration,
                             data[indices[i]].observed, indices[i]});
    events_here += data[indices[i]].observed ? 1 : 0;
  }
  if (events_here == 0) return make_leaf();  // nothing to separate
  std::sort(members.begin(), members.end(),
            [](const Member& a, const Member& b) {
              return a.duration < b.duration;
            });

  const int d = static_cast<int>(covariate_names_.size());
  int k = params_.max_features > 0
              ? std::min(params_.max_features, d)
              : std::max(1, static_cast<int>(std::ceil(std::sqrt(d))));
  std::vector<int> features(static_cast<size_t>(d));
  std::iota(features.begin(), features.end(), 0);
  for (int i = 0; i < k; ++i) {
    const int j =
        static_cast<int>(rng.UniformInt(i, static_cast<int64_t>(d) - 1));
    std::swap(features[static_cast<size_t>(i)],
              features[static_cast<size_t>(j)]);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_stat = 3.0;  // require a non-trivial split (chi2 > 3)
  std::vector<size_t> bin_count;
  for (int fi = 0; fi < k; ++fi) {
    const size_t f = static_cast<size_t>(features[static_cast<size_t>(fi)]);
    if (binned != nullptr) {
      // Histogram mode: one O(n) code-count pass per feature; every
      // candidate then reads its left-child size off the cumulative
      // counts in O(1) instead of re-scanning the node.
      const int num_bins = binned->num_bins(f);
      if (num_bins < 2) continue;
      const uint8_t* column = binned->column(f);
      bin_count.assign(static_cast<size_t>(num_bins), 0);
      int code_lo = num_bins - 1;
      int code_hi = 0;
      for (size_t i = begin; i < end; ++i) {
        const int c = static_cast<int>(column[indices[i]]);
        ++bin_count[static_cast<size_t>(c)];
        code_lo = std::min(code_lo, c);
        code_hi = std::max(code_hi, c);
      }
      if (code_lo == code_hi) continue;  // constant within the node
      for (size_t b = 1; b < bin_count.size(); ++b) {
        bin_count[b] += bin_count[b - 1];  // now cumulative
      }
      for (int c = 0; c < params_.thresholds_per_feature; ++c) {
        // A boundary strictly inside the node's occupied code range, so
        // every candidate separates at least one pair of node values.
        const int b = static_cast<int>(rng.UniformInt(
            code_lo, static_cast<int64_t>(code_hi) - 1));
        const size_t n_left = bin_count[static_cast<size_t>(b)];
        if (n_left < params_.min_samples_leaf ||
            n - n_left < params_.min_samples_leaf) {
          continue;
        }
        const double stat = LogRankStatistic(
            members, [&](size_t row) {
              return static_cast<int>(column[row]) <= b;
            });
        if (stat > best_stat) {
          best_stat = stat;
          best_feature = static_cast<int>(f);
          // Refine toward the node-local gap midpoint: the first bin
          // past `b` holding node rows bounds the empty gap.
          int next_b = b + 1;
          while (next_b < code_hi &&
                 bin_count[static_cast<size_t>(next_b)] ==
                     bin_count[static_cast<size_t>(b)]) {
            ++next_b;
          }
          best_threshold = binned->refined_threshold(f, b, next_b);
        }
      }
      continue;
    }
    double lo = data[indices[begin]].covariates[f];
    double hi = lo;
    for (size_t i = begin; i < end; ++i) {
      const double v = data[indices[i]].covariates[f];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (lo == hi) continue;
    for (int c = 0; c < params_.thresholds_per_feature; ++c) {
      const double threshold = rng.Uniform(lo, hi);
      // Enforce min leaf sizes cheaply.
      size_t n_left = 0;
      for (size_t i = begin; i < end; ++i) {
        if (data[indices[i]].covariates[f] <= threshold) ++n_left;
      }
      if (n_left < params_.min_samples_leaf ||
          n - n_left < params_.min_samples_leaf) {
        continue;
      }
      const double stat = LogRankStatistic(
          members, [&](size_t row) {
            return data[row].covariates[f] <= threshold;
          });
      if (stat > best_stat) {
        best_stat = stat;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  importances_[static_cast<size_t>(best_feature)] += best_stat;
  auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](size_t row) {
        return data[row].covariates[static_cast<size_t>(best_feature)] <=
               best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();
  tree->nodes[static_cast<size_t>(node_index)].feature = best_feature;
  tree->nodes[static_cast<size_t>(node_index)].threshold = best_threshold;
  const int left =
      BuildNode(data, binned, indices, begin, mid, depth + 1, rng, tree);
  const int right =
      BuildNode(data, binned, indices, mid, end, depth + 1, rng, tree);
  tree->nodes[static_cast<size_t>(node_index)].left = left;
  tree->nodes[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

Status RandomSurvivalForest::Fit(
    const std::vector<CovariateObservation>& data,
    std::vector<std::string> covariate_names,
    const SurvivalForestParams& params, uint64_t seed) {
  if (covariate_names.empty()) {
    return Status::InvalidArgument("survival forest needs covariates");
  }
  if (data.size() < 2 * params.min_samples_leaf) {
    return Status::InvalidArgument("too few observations");
  }
  if (params.num_trees <= 0 || params.grid_points < 2 ||
      params.horizon_days <= 0.0 || params.thresholds_per_feature < 1) {
    return Status::InvalidArgument("invalid survival forest params");
  }
  size_t events = 0;
  for (const auto& obs : data) {
    if (obs.covariates.size() != covariate_names.size()) {
      return Status::InvalidArgument("covariate length mismatch");
    }
    if (!std::isfinite(obs.duration) || obs.duration < 0.0) {
      return Status::InvalidArgument("invalid duration");
    }
    if (obs.observed) ++events;
  }
  if (events == 0) {
    return Status::InvalidArgument("needs at least one event");
  }

  params_ = params;
  covariate_names_ = std::move(covariate_names);
  trees_.clear();
  importances_.assign(covariate_names_.size(), 0.0);

  // Histogram mode: bin all covariates once; every tree shares the
  // codes (indexed by original observation row).
  ml::BinnedDataset binned;
  const bool histogram =
      params.split_algorithm == ml::SplitAlgorithm::kHistogram;
  if (histogram) {
    CLOUDSURV_ASSIGN_OR_RETURN(
        binned, ml::BinnedDataset::FromMatrix(
                    data.size(), covariate_names_.size(),
                    [&data](size_t row, size_t col) {
                      return data[row].covariates[col];
                    }));
  }

  // One sample per fitted survival tree (split search + node build).
  static obs::Histogram* const tree_fit_us =
      obs::Registry::Default().GetHistogram(
          "cloudsurv_survival_tree_fit_us",
          "Split search + node construction time of one survival tree");
  const Rng root(seed);
  const size_t n = data.size();
  for (int t = 0; t < params.num_trees; ++t) {
    obs::ScopedTimer timer(tree_fit_us);
    Rng rng = root.Fork(static_cast<uint64_t>(t) + 1);
    std::vector<size_t> sample(n);
    for (size_t i = 0; i < n; ++i) {
      sample[i] = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    Tree tree;
    BuildNode(data, histogram ? &binned : nullptr, sample, 0,
              sample.size(), 0, rng, &tree);
    trees_.push_back(std::move(tree));
  }
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  return Status::OK();
}

std::vector<double> RandomSurvivalForest::PredictCurve(
    const std::vector<double>& covariates) const {
  std::vector<double> curve(static_cast<size_t>(params_.grid_points), 0.0);
  for (const Tree& tree : trees_) {
    const auto& leaf = tree.Leaf(covariates);
    for (size_t i = 0; i < curve.size(); ++i) {
      curve[i] += static_cast<double>(leaf[i]);
    }
  }
  for (double& v : curve) v /= static_cast<double>(trees_.size());
  return curve;
}

double RandomSurvivalForest::PredictSurvival(
    const std::vector<double>& covariates, double time) const {
  const auto curve = PredictCurve(covariates);
  if (time <= 0.0) return 1.0;
  const double step = params_.horizon_days /
                      static_cast<double>(params_.grid_points - 1);
  const double pos = time / step;
  const size_t lo = std::min(static_cast<size_t>(pos),
                             curve.size() - 1);
  if (lo + 1 >= curve.size()) return curve.back();
  const double frac = pos - static_cast<double>(lo);
  return curve[lo] + frac * (curve[lo + 1] - curve[lo]);
}

double RandomSurvivalForest::PredictMedian(
    const std::vector<double>& covariates) const {
  const auto curve = PredictCurve(covariates);
  const double step = params_.horizon_days /
                      static_cast<double>(params_.grid_points - 1);
  for (size_t i = 0; i < curve.size(); ++i) {
    if (curve[i] <= 0.5) return static_cast<double>(i) * step;
  }
  return params_.horizon_days;
}

double RandomSurvivalForest::PredictMortality(
    const std::vector<double>& covariates) const {
  const auto curve = PredictCurve(covariates);
  double mortality = 0.0;
  for (double s : curve) {
    mortality += -std::log(std::max(s, 1e-6));
  }
  return mortality;
}

double RandomSurvivalForest::ConcordanceIndex(
    const std::vector<CovariateObservation>& data) const {
  std::vector<double> risk(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    risk[i] = PredictMortality(data[i].covariates);
  }
  double concordant = 0.0, comparable = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (!data[i].observed) continue;
    for (size_t j = 0; j < data.size(); ++j) {
      if (i == j || data[j].duration <= data[i].duration) continue;
      comparable += 1.0;
      if (risk[i] > risk[j]) {
        concordant += 1.0;
      } else if (risk[i] == risk[j]) {
        concordant += 0.5;
      }
    }
  }
  return comparable == 0.0 ? 0.5 : concordant / comparable;
}

}  // namespace cloudsurv::survival
