#ifndef CLOUDSURV_SURVIVAL_SURVIVAL_DATA_H_
#define CLOUDSURV_SURVIVAL_SURVIVAL_DATA_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace cloudsurv::survival {

/// One individual in a survival study: how long it was observed, and
/// whether the event of interest (here: database drop) occurred at the
/// end of that span. `observed = false` means right-censored — the
/// individual was still event-free when observation stopped.
struct Observation {
  double duration = 0.0;  ///< Observation span, in days.
  bool observed = false;  ///< True = event occurred; false = censored.
};

/// A validated collection of right-censored observations.
class SurvivalData {
 public:
  SurvivalData() = default;

  /// Validates (all durations finite and >= 0) and wraps `observations`.
  static Result<SurvivalData> Make(std::vector<Observation> observations);

  /// Convenience: builds from parallel arrays.
  static Result<SurvivalData> FromArrays(const std::vector<double>& durations,
                                         const std::vector<bool>& observed);

  const std::vector<Observation>& observations() const {
    return observations_;
  }

  size_t size() const { return observations_.size(); }
  bool empty() const { return observations_.empty(); }

  /// Number of observations whose event occurred / was censored.
  size_t num_events() const { return num_events_; }
  size_t num_censored() const { return observations_.size() - num_events_; }

  /// Largest observed duration (0 when empty).
  double max_duration() const { return max_duration_; }

 private:
  explicit SurvivalData(std::vector<Observation> observations);

  std::vector<Observation> observations_;
  size_t num_events_ = 0;
  double max_duration_ = 0.0;
};

}  // namespace cloudsurv::survival

#endif  // CLOUDSURV_SURVIVAL_SURVIVAL_DATA_H_
