#ifndef CLOUDSURV_SURVIVAL_NELSON_AALEN_H_
#define CLOUDSURV_SURVIVAL_NELSON_AALEN_H_

#include <vector>

#include "common/status.h"
#include "survival/survival_data.h"

namespace cloudsurv::survival {

/// One step of a fitted Nelson-Aalen cumulative-hazard curve.
struct NelsonAalenStep {
  double time = 0.0;          ///< Distinct event time.
  size_t at_risk = 0;         ///< n_i.
  size_t events = 0;          ///< d_i.
  double cumulative_hazard = 0.0;  ///< H(t) = sum d_j / n_j.
  double variance = 0.0;      ///< sum d_j / n_j^2 (Aalen's estimator).
};

/// Nelson-Aalen estimator of the cumulative hazard H(t). Complements the
/// KM estimator: exp(-H(t)) approximates S(t), and the hazard increments
/// expose where drop risk concentrates (e.g. the day-~120 incentive
/// expiry spike visible in Figure 1).
class NelsonAalenCurve {
 public:
  /// Fits the estimator. Requires non-empty data.
  static Result<NelsonAalenCurve> Fit(const SurvivalData& data);

  const std::vector<NelsonAalenStep>& steps() const { return steps_; }

  /// H(t): right-continuous step-function lookup; 0 before first event.
  double CumulativeHazardAt(double time) const;

  /// Smoothed hazard rate over [t - half_window, t + half_window]:
  /// (H(hi) - H(lo)) / (hi - lo). Used to locate hazard spikes.
  double SmoothedHazard(double time, double half_window) const;

 private:
  NelsonAalenCurve() = default;
  std::vector<NelsonAalenStep> steps_;
};

}  // namespace cloudsurv::survival

#endif  // CLOUDSURV_SURVIVAL_NELSON_AALEN_H_
