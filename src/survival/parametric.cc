#include "survival/parametric.h"

#include <algorithm>
#include <cmath>

namespace cloudsurv::survival {

namespace {

// Zero event-durations are clamped to this to keep log-densities
// finite (sub-second lifetimes recorded as 0 days).
constexpr double kMinDuration = 1e-8;

double ClampedDuration(double t) { return std::max(t, kMinDuration); }

}  // namespace

double CensoredLogLikelihood(const SurvivalData& data,
                             const stats::Distribution& dist) {
  double ll = 0.0;
  for (const Observation& o : data.observations()) {
    const double t = ClampedDuration(o.duration);
    if (o.observed) {
      ll += std::log(std::max(dist.Pdf(t), 1e-300));
    } else {
      ll += std::log(std::max(1.0 - dist.Cdf(t), 1e-300));
    }
  }
  return ll;
}

Result<ExponentialFitResult> FitExponential(const SurvivalData& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit on empty data");
  }
  if (data.num_events() == 0) {
    return Status::InvalidArgument(
        "exponential MLE needs at least one event");
  }
  double total_time = 0.0;
  for (const Observation& o : data.observations()) {
    total_time += ClampedDuration(o.duration);
  }
  ExponentialFitResult result;
  result.rate = static_cast<double>(data.num_events()) / total_time;
  stats::ExponentialDistribution dist(result.rate);
  result.fit.log_likelihood = CensoredLogLikelihood(data, dist);
  result.fit.num_parameters = 1;
  result.fit.aic = 2.0 * 1 - 2.0 * result.fit.log_likelihood;
  return result;
}

Result<WeibullFitResult> FitWeibull(const SurvivalData& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit on empty data");
  }
  const double d = static_cast<double>(data.num_events());
  if (d == 0.0) {
    return Status::InvalidArgument("Weibull MLE needs at least one event");
  }

  double sum_log_event = 0.0;
  for (const Observation& o : data.observations()) {
    if (o.observed) sum_log_event += std::log(ClampedDuration(o.duration));
  }

  // Profile score in the shape k:
  //   g(k) = d/k + sum_{events} ln t - d * A1(k)/A0(k),
  // with A0 = sum t^k, A1 = sum t^k ln t over ALL observations.
  auto score = [&](double k) {
    double a0 = 0.0, a1 = 0.0;
    for (const Observation& o : data.observations()) {
      const double t = ClampedDuration(o.duration);
      const double tk = std::pow(t, k);
      a0 += tk;
      a1 += tk * std::log(t);
    }
    return d / k + sum_log_event - d * a1 / a0;
  };

  // Bracket the root: g is decreasing; expand until sign change.
  double lo = 1e-3, hi = 1.0;
  while (score(hi) > 0.0 && hi < 200.0) hi *= 2.0;
  if (score(hi) > 0.0) {
    return Status::Internal(
        "Weibull shape did not bracket (degenerate durations?)");
  }
  if (score(lo) < 0.0) {
    // All information pushes the shape to ~0; data is degenerate.
    return Status::InvalidArgument(
        "Weibull MLE degenerate: score negative at minimal shape");
  }

  WeibullFitResult result;
  int iterations = 0;
  for (; iterations < 200; ++iterations) {
    const double mid = 0.5 * (lo + hi);
    if (score(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * std::max(1.0, hi)) break;
  }
  result.shape = 0.5 * (lo + hi);
  result.fit.iterations = iterations;
  result.fit.converged = iterations < 200;

  double a0 = 0.0;
  for (const Observation& o : data.observations()) {
    a0 += std::pow(ClampedDuration(o.duration), result.shape);
  }
  result.scale = std::pow(a0 / d, 1.0 / result.shape);

  stats::WeibullDistribution dist(result.shape, result.scale);
  result.fit.log_likelihood = CensoredLogLikelihood(data, dist);
  result.fit.num_parameters = 2;
  result.fit.aic = 2.0 * 2 - 2.0 * result.fit.log_likelihood;
  return result;
}

}  // namespace cloudsurv::survival
