#ifndef CLOUDSURV_COMMON_RNG_H_
#define CLOUDSURV_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace cloudsurv {

/// Deterministic pseudo-random source. Every stochastic component in the
/// library takes an explicit seed; nothing reads the wall clock or
/// std::random_device, so any run is exactly reproducible from its seed.
///
/// The engine is std::mt19937_64 whose seed is pre-mixed with SplitMix64
/// so that adjacent integer seeds (0, 1, 2, ...) produce uncorrelated
/// streams.
class Rng {
 public:
  /// Constructs a generator for the given seed. Equal seeds yield equal
  /// streams.
  explicit Rng(uint64_t seed) : engine_(Mix(seed)), seed_base_(seed) {}

  /// Derives an independent child generator. Useful for giving each
  /// simulated entity (subscription, database) its own stream so that
  /// adding entities does not perturb the draws of existing ones.
  Rng Fork(uint64_t salt) const {
    return Rng(Mix(seed_base_ ^ (salt * 0x9E3779B97F4A7C15ULL)));
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Standard normal draw scaled to (mean, stddev).
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Lognormal draw with the given log-space parameters.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential draw with the given rate (lambda).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Weibull draw with shape k and scale lambda.
  double Weibull(double shape, double scale) {
    return std::weibull_distribution<double>(shape, scale)(engine_);
  }

  /// Poisson draw with the given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Access to the underlying engine for std::shuffle and
  /// std::*_distribution interop.
  std::mt19937_64& engine() { return engine_; }

 private:
  // SplitMix64 finalizer; decorrelates nearby seeds.
  static uint64_t Mix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
  uint64_t seed_base_ = 0;
};

}  // namespace cloudsurv

#endif  // CLOUDSURV_COMMON_RNG_H_
