#include "common/thread_pool.h"

#include <algorithm>

namespace cloudsurv {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity,
                       fault::FaultInjector* fault_injector)
    : queue_capacity_(std::max<size_t>(1, queue_capacity)),
      fault_injector_(fault_injector),
      queue_depth_gauge_(obs::Registry::Default().GetGauge(
          "cloudsurv_pool_queue_depth",
          "Queued-but-not-started tasks across all thread pools",
          "tasks")),
      tasks_total_(obs::Registry::Default().GetCounter(
          "cloudsurv_pool_tasks_total",
          "Tasks run to completion across all thread pools", "tasks")),
      task_wait_us_(obs::Registry::Default().GetHistogram(
          "cloudsurv_pool_task_wait_us",
          "Time a task spent queued before a worker picked it up")),
      task_run_us_(obs::Registry::Default().GetHistogram(
          "cloudsurv_pool_task_run_us", "Task execution time")) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::PushLocked(std::function<void()> task) {
  queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
  queue_depth_gauge_->Add(1.0);
  queue_not_empty_.notify_one();
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_not_full_.wait(lock, [this]() {
    return shutdown_ || queue_.size() < queue_capacity_;
  });
  if (shutdown_) return false;
  PushLocked(std::move(task));
  return true;
}

bool ThreadPool::TryEnqueue(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || queue_.size() >= queue_capacity_) return false;
  PushLocked(std::move(task));
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock,
                 [this]() { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::Shutdown() {
  bool should_join = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Only the caller that flips the flag joins; concurrent Shutdown()
    // calls return once the flag is set (the joiner drains everything).
    should_join = !shutdown_;
    shutdown_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (!should_join) return;
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_executed_;
}

uint64_t ThreadPool::tasks_failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_failed_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_not_empty_.wait(
          lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ with a drained queue: exit. (Queued tasks still run
        // to completion before workers leave.)
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
      queue_depth_gauge_->Add(-1.0);
      queue_not_full_.notify_one();
    }
    if (fault_injector_ != nullptr) {
      // Only delay faults are meaningful here; the task body owns its
      // own failure semantics.
      fault::SleepFor(
          fault_injector_->Evaluate(fault::Site::kPoolTask).delay_us);
    }
    const auto started_at = std::chrono::steady_clock::now();
    task_wait_us_->Observe(
        std::chrono::duration<double, std::micro>(started_at -
                                                  task.enqueued_at)
            .count());
    bool failed = false;
    try {
      task.fn();
    } catch (...) {
      // Submit() tasks never reach here (packaged_task captures the
      // exception into the future); a throwing Enqueue() task is
      // recorded instead of taking the process down.
      failed = true;
    }
    task_run_us_->Observe(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - started_at)
                              .count());
    tasks_total_->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_tasks_;
      ++tasks_executed_;
      if (failed) ++tasks_failed_;
      if (queue_.empty() && active_tasks_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace cloudsurv
