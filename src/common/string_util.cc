#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace cloudsurv {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

}  // namespace cloudsurv
