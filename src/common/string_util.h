#ifndef CLOUDSURV_COMMON_STRING_UTIL_H_
#define CLOUDSURV_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cloudsurv {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// ASCII lower-case copy.
std::string ToLowerAscii(std::string_view input);

/// True iff `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace cloudsurv

#endif  // CLOUDSURV_COMMON_STRING_UTIL_H_
