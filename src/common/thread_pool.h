#ifndef CLOUDSURV_COMMON_THREAD_POOL_H_
#define CLOUDSURV_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace cloudsurv {

/// Fixed-size worker pool with a bounded task queue.
///
/// Producers block in Enqueue()/Submit() while the queue is full — the
/// queue bound is the engine's backpressure mechanism, so a slow scoring
/// tier throttles ingestion instead of letting work pile up unbounded.
/// TryEnqueue() is the non-blocking variant for callers that prefer to
/// shed load.
///
/// Exceptions: a task submitted through Submit() propagates anything it
/// throws to the caller through the returned future (std::future::get
/// rethrows). A task submitted through Enqueue() must not throw across
/// the task boundary; if it does the pool swallows the exception and
/// counts it in tasks_failed() rather than terminating the process.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1) over a queue holding at
  /// most `queue_capacity` pending tasks (at least 1). An optional
  /// fault injector is evaluated at `fault::Site::kPoolTask` before
  /// each task runs (injected task delays); nullptr disables the hook.
  ThreadPool(size_t num_threads, size_t queue_capacity,
             fault::FaultInjector* fault_injector = nullptr);

  /// Shuts down (drains the queue, joins all workers).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`, blocking while the queue is full. Returns false —
  /// without running the task — if the pool is (or becomes) shut down.
  bool Enqueue(std::function<void()> task);

  /// Non-blocking Enqueue: returns false immediately if the queue is
  /// full or the pool is shut down.
  bool TryEnqueue(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result (blocking
  /// while the queue is full, like Enqueue). If the pool is shut down
  /// the future's get() throws std::runtime_error; if the callable
  /// throws, get() rethrows that exception.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    const bool accepted = Enqueue([task]() { (*task)(); });
    if (!accepted) {
      // Surface the rejection through the future so callers have a
      // single error path.
      std::promise<R> broken;
      future = broken.get_future();
      broken.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool is shut down")));
    }
    return future;
  }

  /// Blocks until every task enqueued so far has finished. New tasks may
  /// still be enqueued afterwards.
  void Wait();

  /// Stops accepting tasks, drains the queue and joins the workers.
  /// Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Current number of queued-but-not-started tasks.
  size_t queue_depth() const;

  /// Tasks that ran to completion (including ones that threw).
  uint64_t tasks_executed() const;

  /// Tasks whose exception was swallowed at the task boundary.
  uint64_t tasks_failed() const;

 private:
  /// A queued task plus its enqueue instant (feeds the wait-time
  /// histogram when the task is picked up).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void WorkerLoop();
  void PushLocked(std::function<void()> task);

  const size_t queue_capacity_;
  /// Optional fault hook (see docs/operations.md); nullptr = no-op.
  fault::FaultInjector* const fault_injector_;
  /// Process-wide pool metrics (shared by every pool in the process —
  /// see docs/observability.md). Resolved once at construction so the
  /// worker loop never touches the registry mutex.
  obs::Gauge* queue_depth_gauge_;
  obs::Counter* tasks_total_;
  obs::Histogram* task_wait_us_;
  obs::Histogram* task_run_us_;
  mutable std::mutex mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable all_idle_;
  std::deque<QueuedTask> queue_;
  std::vector<std::thread> threads_;
  size_t active_tasks_ = 0;
  uint64_t tasks_executed_ = 0;
  uint64_t tasks_failed_ = 0;
  bool shutdown_ = false;
};

}  // namespace cloudsurv

#endif  // CLOUDSURV_COMMON_THREAD_POOL_H_
