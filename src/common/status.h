#ifndef CLOUDSURV_COMMON_STATUS_H_
#define CLOUDSURV_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace cloudsurv {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB convention: library code never throws across an API
/// boundary; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIOError = 7,
  kNotImplemented = 8,
};

/// Returns a stable human-readable name for a status code
/// (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. The value accessors
/// must only be called after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing a Result
  /// from an OK status is a programming error and is converted to an
  /// Internal error to keep the invariant "no value implies !ok()".
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; undefined behaviour if !ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status from an expression that yields Status.
#define CLOUDSURV_RETURN_NOT_OK(expr)        \
  do {                                       \
    ::cloudsurv::Status _st = (expr);        \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define CLOUDSURV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value();

#define CLOUDSURV_ASSIGN_OR_RETURN(lhs, expr)                              \
  CLOUDSURV_ASSIGN_OR_RETURN_IMPL(                                         \
      CLOUDSURV_CONCAT_(_result_, __LINE__), lhs, expr)

#define CLOUDSURV_CONCAT_INNER_(a, b) a##b
#define CLOUDSURV_CONCAT_(a, b) CLOUDSURV_CONCAT_INNER_(a, b)

}  // namespace cloudsurv

#endif  // CLOUDSURV_COMMON_STATUS_H_
