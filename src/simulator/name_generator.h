#ifndef CLOUDSURV_SIMULATOR_NAME_GENERATOR_H_
#define CLOUDSURV_SIMULATOR_NAME_GENERATOR_H_

#include <string>

#include "common/rng.h"

namespace cloudsurv::simulator {

/// How an entity name is produced. The paper finds name shape to be the
/// second most predictive feature family because it separates manual
/// from automated creation (section 5.4); the simulator reproduces that
/// signal by giving automated processes machine-generated names.
enum class NameStyle {
  /// A human typing: one or two dictionary words, occasional digits,
  /// repeated characters, low distinct-character rate.
  kHumanWords = 0,
  /// Tooling: word prefix plus a long random alphanumeric/hex suffix,
  /// high distinct-character rate.
  kAutomatedSuffix = 1,
  /// Scripted-but-templated: word, ISO-ish date stamp, small counter
  /// ("nightly-20170412-3").
  kSemiAutomatedDated = 2,
};

/// What the creator intends the database for. Real users name scratch
/// databases accordingly ("test", "tmp", "demo") and keepers with
/// workload words ("prod", "orders") — a noisy but learnable signal the
/// paper's name features exploit.
enum class NamePurpose {
  kNeutral = 0,  ///< No bias; any word.
  kScratch = 1,  ///< Biased toward throwaway words.
  kKeeper = 2,   ///< Biased toward durable-workload words.
};

/// Draws a database name in the given style. Output alphabet is
/// [a-z0-9-] (safe for CSV round-trips).
std::string GenerateDatabaseName(NameStyle style, Rng& rng,
                                 NamePurpose purpose = NamePurpose::kNeutral);

/// Draws a logical-server name in the given style. Servers are named
/// once per subscription and shared by its databases.
std::string GenerateServerName(NameStyle style, Rng& rng);

}  // namespace cloudsurv::simulator

#endif  // CLOUDSURV_SIMULATOR_NAME_GENERATOR_H_
