#include "simulator/stream.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>
#include <vector>

#include "telemetry/civil_time.h"

namespace cloudsurv::simulator {

namespace core_thresholds {
// The 30-day short/long boundary of the study (section 4.1). Only used
// to key the destiny-correlated observable signals.
inline constexpr double kLongDays = 30.0;
}  // namespace core_thresholds

namespace {

using telemetry::CivilDateTime;
using telemetry::Edition;
using telemetry::kSecondsPerDay;
using telemetry::kSecondsPerHour;
using telemetry::SloLadder;
using telemetry::Timestamp;
using telemetry::ToCivil;

int SampleIndexByWeights(const double* weights, int n, Rng& rng) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += weights[i];
  double u = rng.Uniform() * total;
  for (int i = 0; i < n; ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return n - 1;
}

// Cheapest-biased initial SLO within an edition: weight halves per step
// up the ladder (most users start small).
int SampleInitialSlo(Edition edition, Rng& rng) {
  const std::vector<int> slos = telemetry::SlosOfEdition(edition);
  std::vector<double> weights(slos.size());
  double w = 1.0;
  for (size_t i = 0; i < slos.size(); ++i) {
    weights[i] = w;
    w *= 0.5;
  }
  const int idx =
      SampleIndexByWeights(weights.data(), static_cast<int>(slos.size()), rng);
  return slos[static_cast<size_t>(idx)];
}

// Samples a creation timestamp honoring the archetype's calendar
// pattern, in region-local civil time.
Timestamp SampleCreationTime(const CreationPattern& pattern,
                             const RegionConfig& config, Rng& rng) {
  const double window_days = config.window_days();
  const int64_t offset_seconds =
      static_cast<int64_t>(config.utc_offset_minutes) * 60;
  for (int attempt = 0; attempt < 300; ++attempt) {
    double day_offset;
    if (pattern.front_load_days > 0.0) {
      day_offset = rng.Exponential(1.0 / pattern.front_load_days);
      if (day_offset >= window_days) continue;
    } else {
      day_offset = rng.Uniform(0.0, window_days);
    }
    // Representative local noon of the candidate day.
    const Timestamp day_utc =
        config.window_start +
        static_cast<int64_t>(day_offset) * kSecondsPerDay;
    const CivilDateTime local =
        ToCivil(day_utc + 12 * kSecondsPerHour, config.utc_offset_minutes);
    const bool weekend = local.day_of_week >= 6;
    const bool holiday =
        config.holidays.IsHolidayDate(local.year, local.month, local.day);
    if (weekend && !rng.Bernoulli(pattern.weekend_probability)) continue;
    if (holiday && !rng.Bernoulli(pattern.holiday_probability)) continue;
    int hour;
    if (!weekend && !holiday &&
        rng.Bernoulli(pattern.business_hours_probability)) {
      hour = static_cast<int>(rng.UniformInt(8, 17));
    } else {
      hour = static_cast<int>(rng.UniformInt(0, 23));
    }
    const Timestamp local_ts = telemetry::MakeTimestamp(
        local.year, local.month, local.day, hour,
        static_cast<int>(rng.UniformInt(0, 59)),
        static_cast<int>(rng.UniformInt(0, 59)));
    const Timestamp utc = local_ts - offset_seconds;
    if (utc >= config.window_start && utc < config.window_end) return utc;
  }
  // Pathological pattern; fall back to a uniform draw.
  return config.window_start +
         static_cast<int64_t>(rng.Uniform() *
                              static_cast<double>(config.window_end -
                                                  config.window_start));
}

// A pending SLO-change intent; resolved against the running SLO when
// the schedule is applied in time order.
struct SloIntent {
  Timestamp ts;
  enum class Kind { kSetExact, kStepWithinEdition, kEditionUpgrade } kind;
  int exact_slo = 0;  ///< For kSetExact.
  int step = 0;       ///< For kStepWithinEdition: +1 / -1.
};

// Finds the next local civil time with the given day-of-week and hour,
// strictly after `after`.
Timestamp NextLocalWeekdayHour(Timestamp after, int target_dow,
                               int target_hour, int utc_offset_minutes) {
  const int64_t offset = static_cast<int64_t>(utc_offset_minutes) * 60;
  const CivilDateTime local = ToCivil(after, utc_offset_minutes);
  Timestamp candidate_local_day =
      telemetry::MakeTimestamp(local.year, local.month, local.day);
  for (int add = 0; add <= 14; ++add) {
    const Timestamp day = candidate_local_day + add * kSecondsPerDay;
    const CivilDateTime c = ToCivil(day + 12 * kSecondsPerHour, 0);
    if (c.day_of_week != target_dow) continue;
    const Timestamp local_ts = day + target_hour * kSecondsPerHour;
    const Timestamp utc = local_ts - offset;
    if (utc > after) return utc;
  }
  return after + 7 * kSecondsPerDay;  // unreachable fallback
}

// Builds the SLO-change schedule for one database. `end_cap` is
// exclusive: all change events land strictly before it. Consumes only
// the database's dedicated schedule RNG.
std::vector<telemetry::SloChange> BuildSloSchedule(
    const ArchetypeProfile& profile, int initial_slo, Timestamp created,
    Timestamp end_cap, const RegionConfig& config, Rng& rng) {
  std::vector<telemetry::SloChange> out;
  if (end_cap <= created + kSecondsPerHour) return out;
  const Edition edition0 = SloLadder()[initial_slo].edition;
  const double life_days = static_cast<double>(end_cap - created) /
                           static_cast<double>(kSecondsPerDay);

  int current = initial_slo;
  // Weekend scaling: Premium databases of this archetype downgrade to
  // S3 on Friday evenings and restore Monday mornings.
  if (edition0 == Edition::kPremium && life_days > 10.0 &&
      rng.Bernoulli(profile.slo.weekend_scaler_probability)) {
    const int s3 = telemetry::SloIndexByName("S3");
    const int premium_slo = initial_slo;
    Timestamp t = NextLocalWeekdayHour(created + kSecondsPerHour, 5, 17,
                                       config.utc_offset_minutes);
    while (true) {
      const Timestamp down =
          t + static_cast<int64_t>(rng.Uniform(-2.0, 2.0) * kSecondsPerHour);
      if (down >= end_cap || down <= created) break;
      out.push_back({down, current, s3});
      current = s3;
      const Timestamp monday =
          NextLocalWeekdayHour(down, 1, 8, config.utc_offset_minutes) +
          static_cast<int64_t>(rng.Uniform(0.0, 2.0) * kSecondsPerHour);
      if (monday >= end_cap) break;
      out.push_back({monday, current, premium_slo});
      current = premium_slo;
      t = NextLocalWeekdayHour(monday, 5, 17, config.utc_offset_minutes);
    }
    return out;
  }

  // Weekly within-edition level moves and a rare permanent edition
  // upgrade, merged in time order.
  std::vector<SloIntent> intents;
  const int weeks = static_cast<int>(life_days / 7.0);
  for (int wk = 0; wk < weeks; ++wk) {
    if (!rng.Bernoulli(profile.slo.weekly_level_change_probability)) continue;
    const Timestamp ts =
        created + static_cast<int64_t>((static_cast<double>(wk) +
                                        rng.Uniform()) *
                                       7.0 * kSecondsPerDay);
    SloIntent intent;
    intent.ts = ts;
    intent.kind = SloIntent::Kind::kStepWithinEdition;
    intent.step = rng.Bernoulli(0.5) ? 1 : -1;
    intents.push_back(intent);
  }
  if (life_days > 3.0 &&
      rng.Bernoulli(profile.slo.lifetime_edition_upgrade_probability)) {
    SloIntent intent;
    intent.ts = created + kSecondsPerDay +
                static_cast<int64_t>(
                    rng.Uniform() *
                    static_cast<double>(end_cap - created - kSecondsPerDay));
    intent.kind = SloIntent::Kind::kEditionUpgrade;
    intents.push_back(intent);
  }
  std::sort(intents.begin(), intents.end(),
            [](const SloIntent& a, const SloIntent& b) { return a.ts < b.ts; });
  Timestamp last_ts = created;
  for (const SloIntent& intent : intents) {
    Timestamp ts = std::max(intent.ts, last_ts + 60);
    if (ts >= end_cap) continue;
    int next = current;
    const Edition cur_edition = SloLadder()[current].edition;
    switch (intent.kind) {
      case SloIntent::Kind::kStepWithinEdition: {
        const std::vector<int> slos = telemetry::SlosOfEdition(cur_edition);
        const auto it = std::find(slos.begin(), slos.end(), current);
        int pos = static_cast<int>(it - slos.begin()) + intent.step;
        pos = std::clamp(pos, 0, static_cast<int>(slos.size()) - 1);
        next = slos[static_cast<size_t>(pos)];
        break;
      }
      case SloIntent::Kind::kEditionUpgrade: {
        if (cur_edition == Edition::kBasic) {
          next = telemetry::CheapestSloOfEdition(Edition::kStandard);
        } else if (cur_edition == Edition::kStandard) {
          next = telemetry::CheapestSloOfEdition(Edition::kPremium);
        }
        break;
      }
      case SloIntent::Kind::kSetExact:
        next = intent.exact_slo;
        break;
    }
    if (next == current) continue;
    out.push_back({ts, current, next});
    current = next;
    last_ts = ts;
  }
  return out;
}

// Computes the size-sample trajectory: dense (6-hourly) over the first
// three days of life — the window the x=2-day features observe — then
// weekly. Consumes only the database's dedicated size RNG.
void BuildSizeSamples(const ArchetypeProfile& profile, Timestamp created,
                      Timestamp end_cap, double lifetime_days, Rng& rng,
                      std::vector<std::pair<Timestamp, double>>* out) {
  const SizeModel& m = profile.size;
  const double size0 = rng.Uniform(m.initial_min_mb, m.initial_max_mb);
  // Databases destined to be dropped soon are loaded less aggressively
  // (abandoned experiments stop growing); long-lived workloads keep
  // ingesting. This is the learnable size signal the paper's
  // "rate of change in size" feature targets (section 4.2).
  const double destiny_growth =
      0.3 + 0.7 * std::min(1.0, lifetime_days / 45.0);
  const double g_early =
      std::log1p(m.early_daily_growth * destiny_growth);
  const double g_late = std::log1p(m.late_daily_growth * destiny_growth);

  std::vector<Timestamp> times;
  const Timestamp first = created + kSecondsPerHour;
  for (Timestamp t = first; t < created + 3 * kSecondsPerDay;
       t += 6 * kSecondsPerHour) {
    times.push_back(t);
  }
  for (Timestamp t = created + 7 * kSecondsPerDay;; t += 7 * kSecondsPerDay) {
    if (t >= end_cap) break;
    times.push_back(t);
  }
  if (times.empty() && end_cap > created + 120) {
    times.push_back(created + 60);
  }
  for (Timestamp t : times) {
    if (t >= end_cap) continue;
    const double days = static_cast<double>(t - created) /
                        static_cast<double>(kSecondsPerDay);
    const double log_size = std::log(size0) +
                            g_early * std::min(days, 7.0) +
                            g_late * std::max(0.0, days - 7.0) +
                            rng.Normal(0.0, m.noise_sigma);
    // The store tolerates any positive size; cap at 4 TB for sanity.
    const double size_mb = std::min(std::exp(log_size), 4.0 * 1024 * 1024);
    out->emplace_back(t, size_mb);
  }
}

}  // namespace

namespace internal {

/// Compact index entry from the creation pass: when database `db`
/// (d-th database of subscription `sub`) comes into existence.
struct CreationRow {
  Timestamp created = 0;
  telemetry::DatabaseId db = 0;
  uint32_t sub = 0;
  uint32_t d = 0;
};

/// Compact future event awaiting its partition. Creation payloads never
/// take this form (a creation is always emitted in the partition being
/// filled), so no strings are buffered.
struct PendingRow {
  Timestamp ts = 0;
  telemetry::DatabaseId db = 0;
  telemetry::SubscriptionId sub = 0;
  double size_mb = 0.0;
  uint16_t old_slo = 0;
  uint16_t new_slo = 0;
  uint8_t kind = 0;  ///< telemetry::EventKind.
};

/// Replayed per-subscription context (everything drawn from the
/// subscription's own RNG before database forks).
struct SubContext {
  static constexpr uint64_t kNoSub = static_cast<uint64_t>(-1);
  uint64_t sub = kNoSub;
  Rng sub_rng{0};
  const ArchetypeProfile* profile = nullptr;
  int sub_type = 0;
  std::vector<telemetry::ServerId> server_ids;
  std::vector<std::string> server_names;
};

struct StreamRep {
  static constexpr size_t kSubCacheSize = 4096;  // power of two

  RegionConfig config;
  StreamOptions options;
  SimulationSummary summary;
  RegionEventStream::Stats stats;

  Rng root{0};
  std::vector<CreationRow> creations;
  std::vector<telemetry::ServerId> first_server;  ///< Per subscription.
  size_t cursor = 0;
  int64_t next_partition = 0;
  int64_t num_partitions = 0;
  std::vector<std::vector<PendingRow>> pending;  ///< Per partition.
  size_t pending_rows = 0;
  std::vector<SubContext> sub_cache{kSubCacheSize};

  SubContext& GetSubContext(uint64_t sub) {
    SubContext& slot = sub_cache[sub & (kSubCacheSize - 1)];
    if (slot.sub == sub) return slot;
    slot.sub = sub;
    slot.sub_rng = root.Fork(sub + 1);
    Rng& rng = slot.sub_rng;
    const Archetype archetype = config.mix.Sample(rng);
    slot.profile = &GetArchetypeProfile(archetype);
    slot.sub_type = SampleIndexByWeights(
        slot.profile->subscription_weights.data(),
        telemetry::kNumSubscriptionTypes, rng);
    const int num_servers = rng.Bernoulli(0.2) ? 2 : 1;
    (void)rng.Poisson(slot.profile->mean_databases * config.window_days() /
                      150.0);  // burn the database-count draw
    slot.server_ids.clear();
    slot.server_names.clear();
    for (int s = 0; s < num_servers; ++s) {
      slot.server_ids.push_back(first_server[sub] +
                                static_cast<telemetry::ServerId>(s));
      slot.server_names.push_back(
          GenerateServerName(slot.profile->name_style, rng));
    }
    return slot;
  }

  void AddPending(PendingRow row) {
    const int64_t k = (row.ts - config.window_start) / options.partition_seconds;
    const int64_t clamped =
        std::clamp<int64_t>(k, next_partition - 1, num_partitions - 1);
    pending[static_cast<size_t>(clamped)].push_back(row);
    ++pending_rows;
    stats.peak_pending_events = std::max(stats.peak_pending_events,
                                         pending_rows);
  }

  // Generates the full payload of one database (creation event appended
  // to `creations_out`; later events bucketed into their partitions).
  void GenerateDatabase(const CreationRow& row,
                        std::vector<telemetry::Event>* creations_out) {
    SubContext& ctx = GetSubContext(row.sub);
    const ArchetypeProfile& profile = *ctx.profile;
    Rng db_rng = ctx.sub_rng.Fork(static_cast<uint64_t>(row.d) + 1);

    const int edition_idx = SampleIndexByWeights(
        profile.edition_weights.data(), telemetry::kNumEditions, db_rng);
    const Edition edition = static_cast<Edition>(edition_idx);
    const int slo = SampleInitialSlo(edition, db_rng);
    const double lifetime_days =
        profile.lifetime[static_cast<size_t>(edition_idx)]->Sample(db_rng);
    const bool destined_long = lifetime_days > core_thresholds::kLongDays;

    // Throwaway databases skew toward scripted off-hours creation;
    // keepers toward deliberate business-hours creation. A mild
    // modulation: most of the calendar signal still comes from the
    // archetype itself.
    CreationPattern pattern = profile.creation;
    pattern.business_hours_probability = std::clamp(
        pattern.business_hours_probability * (destined_long ? 1.15 : 0.7),
        0.0, 0.95);
    const Timestamp created = SampleCreationTime(pattern, config, db_rng);
    // `created == row.created`: the index pass replayed the same fork.

    const Timestamp drop_ts =
        created + static_cast<int64_t>(lifetime_days *
                                       static_cast<double>(kSecondsPerDay));
    const bool dropped_in_window = drop_ts < config.window_end;
    const Timestamp end_cap = std::min(drop_ts, config.window_end);

    const int srv = static_cast<int>(db_rng.UniformInt(
        0, static_cast<int64_t>(ctx.server_ids.size()) - 1));
    NamePurpose purpose = NamePurpose::kNeutral;
    if (db_rng.Uniform() < 0.55) {
      purpose = destined_long ? NamePurpose::kKeeper : NamePurpose::kScratch;
    }

    telemetry::DatabaseCreatedPayload payload;
    payload.server_id = ctx.server_ids[static_cast<size_t>(srv)];
    payload.server_name = ctx.server_names[static_cast<size_t>(srv)];
    payload.database_name =
        GenerateDatabaseName(profile.name_style, db_rng, purpose);
    payload.slo_index = slo;
    payload.subscription_type =
        static_cast<telemetry::SubscriptionType>(ctx.sub_type);
    creations_out->push_back(telemetry::MakeCreatedEvent(
        created, row.db, row.sub, std::move(payload)));

    Rng slo_rng = db_rng.Fork(1);
    for (const telemetry::SloChange& change :
         BuildSloSchedule(profile, slo, created, end_cap, config, slo_rng)) {
      PendingRow p;
      p.ts = change.timestamp;
      p.db = row.db;
      p.sub = row.sub;
      p.old_slo = static_cast<uint16_t>(change.old_slo_index);
      p.new_slo = static_cast<uint16_t>(change.new_slo_index);
      p.kind = static_cast<uint8_t>(telemetry::EventKind::kSloChanged);
      AddPending(p);
    }

    Rng size_rng = db_rng.Fork(2);
    std::vector<std::pair<Timestamp, double>> samples;
    BuildSizeSamples(profile, created, end_cap, lifetime_days, size_rng,
                     &samples);
    for (const auto& [ts, mb] : samples) {
      PendingRow p;
      p.ts = ts;
      p.db = row.db;
      p.sub = row.sub;
      p.size_mb = mb;
      p.kind = static_cast<uint8_t>(telemetry::EventKind::kSizeSample);
      AddPending(p);
    }

    if (dropped_in_window) {
      PendingRow p;
      p.ts = drop_ts;
      p.db = row.db;
      p.sub = row.sub;
      p.kind = static_cast<uint8_t>(telemetry::EventKind::kDatabaseDropped);
      AddPending(p);
    }
  }
};

}  // namespace internal

RegionEventStream::RegionEventStream() = default;
RegionEventStream::~RegionEventStream() = default;
RegionEventStream::RegionEventStream(RegionEventStream&&) noexcept = default;
RegionEventStream& RegionEventStream::operator=(RegionEventStream&&) noexcept =
    default;

Result<RegionEventStream> RegionEventStream::Open(const RegionConfig& config,
                                                  StreamOptions options) {
  if (config.window_end <= config.window_start) {
    return Status::InvalidArgument("window_end must exceed window_start");
  }
  if (config.num_subscriptions == 0) {
    return Status::InvalidArgument("num_subscriptions must be positive");
  }
  if (options.partition_seconds <= 0) {
    return Status::InvalidArgument("partition_seconds must be positive");
  }

  RegionEventStream stream;
  stream.rep_ = std::make_unique<internal::StreamRep>();
  internal::StreamRep& rep = *stream.rep_;
  rep.config = config;
  rep.options = options;
  rep.root = Rng(config.seed);

  const int64_t window = config.window_end - config.window_start;
  rep.num_partitions =
      (window + options.partition_seconds - 1) / options.partition_seconds;
  rep.pending.resize(static_cast<size_t>(rep.num_partitions));

  rep.summary.num_subscriptions = config.num_subscriptions;
  const double scale = config.window_days() / 150.0;
  telemetry::DatabaseId next_db = 0;
  telemetry::ServerId next_server = 0;

  // Creation-index pass: per database, replay its fork just far enough
  // (edition, SLO, lifetime, creation time) to learn when it appears.
  for (size_t sub = 0; sub < config.num_subscriptions; ++sub) {
    Rng sub_rng = rep.root.Fork(sub + 1);
    const Archetype archetype = config.mix.Sample(sub_rng);
    const ArchetypeProfile& profile = GetArchetypeProfile(archetype);
    ++rep.summary.subscriptions_per_archetype[static_cast<size_t>(archetype)];
    (void)SampleIndexByWeights(profile.subscription_weights.data(),
                               telemetry::kNumSubscriptionTypes, sub_rng);
    const int num_servers = sub_rng.Bernoulli(0.2) ? 2 : 1;
    const int64_t extra = sub_rng.Poisson(profile.mean_databases * scale);
    const int64_t count = profile.min_databases + extra;
    rep.first_server.push_back(next_server);
    next_server += static_cast<telemetry::ServerId>(num_servers);
    rep.summary.databases_per_archetype[static_cast<size_t>(archetype)] +=
        static_cast<size_t>(count);

    for (int64_t d = 0; d < count; ++d) {
      Rng db_rng = sub_rng.Fork(static_cast<uint64_t>(d) + 1);
      const int edition_idx = SampleIndexByWeights(
          profile.edition_weights.data(), telemetry::kNumEditions, db_rng);
      const Edition edition = static_cast<Edition>(edition_idx);
      (void)SampleInitialSlo(edition, db_rng);
      const double lifetime_days =
          profile.lifetime[static_cast<size_t>(edition_idx)]->Sample(db_rng);
      CreationPattern pattern = profile.creation;
      pattern.business_hours_probability = std::clamp(
          pattern.business_hours_probability *
              (lifetime_days > core_thresholds::kLongDays ? 1.15 : 0.7),
          0.0, 0.95);
      const Timestamp created = SampleCreationTime(pattern, config, db_rng);
      internal::CreationRow row;
      row.created = created;
      row.db = next_db++;
      row.sub = static_cast<uint32_t>(sub);
      row.d = static_cast<uint32_t>(d);
      rep.creations.push_back(row);
    }
  }
  rep.summary.num_databases = next_db;

  std::sort(rep.creations.begin(), rep.creations.end(),
            [](const internal::CreationRow& a, const internal::CreationRow& b) {
              return std::tie(a.created, a.db) < std::tie(b.created, b.db);
            });
  rep.stats.creation_index_bytes =
      rep.creations.capacity() * sizeof(internal::CreationRow) +
      rep.first_server.capacity() * sizeof(telemetry::ServerId);
  return stream;
}

size_t RegionEventStream::num_partitions() const {
  return static_cast<size_t>(rep_->num_partitions);
}

bool RegionEventStream::Done() const {
  return rep_->next_partition >= rep_->num_partitions;
}

RegionEventStream::Partition RegionEventStream::NextPartition() {
  internal::StreamRep& rep = *rep_;
  const int64_t k = rep.next_partition++;
  Partition part;
  part.index = k;
  part.begin = rep.config.window_start + k * rep.options.partition_seconds;
  part.end = std::min<Timestamp>(part.begin + rep.options.partition_seconds,
                                 rep.config.window_end);

  // Walk creations falling inside this partition; each expands into its
  // database's full event set (later events land in pending buckets).
  std::vector<telemetry::Event> creations_out;
  while (rep.cursor < rep.creations.size() &&
         rep.creations[rep.cursor].created < part.end) {
    rep.GenerateDatabase(rep.creations[rep.cursor], &creations_out);
    ++rep.cursor;
  }

  std::vector<internal::PendingRow> bucket =
      std::move(rep.pending[static_cast<size_t>(k)]);
  std::vector<internal::PendingRow>().swap(
      rep.pending[static_cast<size_t>(k)]);
  rep.pending_rows -= bucket.size();
  std::sort(bucket.begin(), bucket.end(),
            [](const internal::PendingRow& a, const internal::PendingRow& b) {
              return std::tie(a.ts, a.db, a.kind) <
                     std::tie(b.ts, b.db, b.kind);
            });

  // Merge the creation events (already in (timestamp, database) order;
  // creation is the smallest kind) with the sorted pending rows.
  part.events.reserve(creations_out.size() + bucket.size());
  size_t i = 0;
  size_t j = 0;
  auto emit_pending = [&part](const internal::PendingRow& p) {
    switch (static_cast<telemetry::EventKind>(p.kind)) {
      case telemetry::EventKind::kSloChanged:
        part.events.push_back(telemetry::MakeSloChangedEvent(
            p.ts, p.db, p.sub, p.old_slo, p.new_slo));
        break;
      case telemetry::EventKind::kSizeSample:
        part.events.push_back(
            telemetry::MakeSizeSampleEvent(p.ts, p.db, p.sub, p.size_mb));
        break;
      default:
        part.events.push_back(telemetry::MakeDroppedEvent(p.ts, p.db, p.sub));
        break;
    }
  };
  while (i < creations_out.size() || j < bucket.size()) {
    if (j == bucket.size()) {
      part.events.push_back(std::move(creations_out[i++]));
    } else if (i == creations_out.size()) {
      emit_pending(bucket[j++]);
    } else {
      const telemetry::Event& c = creations_out[i];
      const internal::PendingRow& p = bucket[j];
      if (std::tuple<Timestamp, telemetry::DatabaseId, uint8_t>(
              c.timestamp, c.database_id, 0) <
          std::tie(p.ts, p.db, p.kind)) {
        part.events.push_back(std::move(creations_out[i++]));
      } else {
        emit_pending(bucket[j++]);
      }
    }
  }

  ++rep.stats.partitions_emitted;
  rep.summary.num_events += part.events.size();
  return part;
}

const SimulationSummary& RegionEventStream::summary() const {
  return rep_->summary;
}

const RegionEventStream::Stats& RegionEventStream::stats() const {
  return rep_->stats;
}

}  // namespace cloudsurv::simulator
