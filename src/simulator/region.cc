#include "simulator/region.h"

namespace cloudsurv::simulator {

namespace {

using telemetry::HolidayCalendar;
using telemetry::MakeTimestamp;

HolidayCalendar UsHolidays2017() {
  HolidayCalendar cal;
  cal.AddHoliday(2017, 1, 2);   // New Year's Day (observed)
  cal.AddHoliday(2017, 1, 16);  // Martin Luther King Jr. Day
  cal.AddHoliday(2017, 2, 20);  // Presidents' Day
  cal.AddHoliday(2017, 5, 29);  // Memorial Day
  return cal;
}

HolidayCalendar EuHolidays2017() {
  HolidayCalendar cal;
  cal.AddHoliday(2017, 1, 1);   // New Year's Day
  cal.AddHoliday(2017, 4, 14);  // Good Friday
  cal.AddHoliday(2017, 4, 17);  // Easter Monday
  cal.AddHoliday(2017, 5, 1);   // Labour Day
  cal.AddHoliday(2017, 5, 25);  // Ascension Day
  return cal;
}

HolidayCalendar AsiaHolidays2017() {
  HolidayCalendar cal;
  cal.AddHoliday(2017, 1, 2);  // New Year holiday
  for (int d = 27; d <= 31; ++d) cal.AddHoliday(2017, 1, d);  // Lunar NY
  cal.AddHoliday(2017, 2, 1);
  cal.AddHoliday(2017, 2, 2);
  cal.AddHoliday(2017, 4, 4);  // Qingming
  cal.AddHoliday(2017, 5, 1);  // Labour Day
  cal.AddHoliday(2017, 5, 30); // Dragon Boat Festival
  return cal;
}

}  // namespace

Result<RegionConfig> MakeRegionPreset(int region_index,
                                      size_t num_subscriptions,
                                      uint64_t seed) {
  if (region_index < 1 || region_index > 3) {
    return Status::InvalidArgument("region_index must be 1, 2 or 3");
  }
  if (num_subscriptions == 0) {
    return Status::InvalidArgument("num_subscriptions must be positive");
  }
  RegionConfig config;
  config.num_subscriptions = num_subscriptions;
  config.seed = seed;
  // Five-month window, matching the paper's observation span.
  config.window_start = MakeTimestamp(2017, 1, 1);
  config.window_end = MakeTimestamp(2017, 5, 31);
  config.mix = DefaultArchetypeMix();
  auto& w = config.mix.weights;
  switch (region_index) {
    case 1:
      config.name = "Region-1";
      config.utc_offset_minutes = -8 * 60;
      config.holidays = UsHolidays2017();
      break;
    case 2:
      config.name = "Region-2";
      config.utc_offset_minutes = 1 * 60;
      config.holidays = EuHolidays2017();
      // Enterprise-heavier: more production and batch, fewer trials.
      w[static_cast<size_t>(Archetype::kProductionSteady)] += 0.05;
      w[static_cast<size_t>(Archetype::kBatchRefresher)] += 0.02;
      w[static_cast<size_t>(Archetype::kTrialExplorer)] -= 0.05;
      w[static_cast<size_t>(Archetype::kHobbyProject)] -= 0.02;
      break;
    case 3:
      config.name = "Region-3";
      config.utc_offset_minutes = 8 * 60;
      config.holidays = AsiaHolidays2017();
      // Automation-heavier mix.
      w[static_cast<size_t>(Archetype::kCiEphemeralBot)] += 0.02;
      w[static_cast<size_t>(Archetype::kBatchRefresher)] += 0.02;
      w[static_cast<size_t>(Archetype::kDevTestCycler)] += 0.03;
      w[static_cast<size_t>(Archetype::kProductionSteady)] -= 0.04;
      w[static_cast<size_t>(Archetype::kCampaignSeasonal)] -= 0.03;
      break;
  }
  return config;
}

}  // namespace cloudsurv::simulator
