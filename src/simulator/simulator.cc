#include "simulator/simulator.h"

#include <iterator>
#include <utility>
#include <vector>

#include "simulator/stream.h"

namespace cloudsurv::simulator {

// Both entry points are thin drivers over RegionEventStream, so batch
// and streaming generation are bit-identical by construction: the
// partitions pulled here are exactly what a streaming consumer sees.

Result<telemetry::TelemetryStore> SimulateRegion(const RegionConfig& config,
                                                 SimulationSummary* summary) {
  const StreamOptions stream_options;
  CLOUDSURV_ASSIGN_OR_RETURN(RegionEventStream stream,
                             RegionEventStream::Open(config, stream_options));
  telemetry::TelemetryStore::Options store_options;
  store_options.partition_seconds = stream_options.partition_seconds;
  telemetry::TelemetryStore store(config.name, config.utc_offset_minutes,
                                  config.holidays, config.window_start,
                                  config.window_end, store_options);
  while (!stream.Done()) {
    RegionEventStream::Partition part = stream.NextPartition();
    CLOUDSURV_RETURN_NOT_OK(store.AppendEvents(std::move(part.events)));
  }
  CLOUDSURV_RETURN_NOT_OK(store.Finalize());
  if (summary != nullptr) *summary = stream.summary();
  return store;
}

Result<std::vector<telemetry::Event>> GenerateEventStream(
    const RegionConfig& config, SimulationSummary* summary) {
  CLOUDSURV_ASSIGN_OR_RETURN(RegionEventStream stream,
                             RegionEventStream::Open(config));
  std::vector<telemetry::Event> events;
  while (!stream.Done()) {
    RegionEventStream::Partition part = stream.NextPartition();
    events.insert(events.end(),
                  std::make_move_iterator(part.events.begin()),
                  std::make_move_iterator(part.events.end()));
  }
  if (summary != nullptr) *summary = stream.summary();
  return events;
}

}  // namespace cloudsurv::simulator
