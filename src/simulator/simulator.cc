#include "simulator/simulator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "telemetry/civil_time.h"

namespace cloudsurv::simulator {

namespace core_thresholds {
// The 30-day short/long boundary of the study (section 4.1). Only used
// to key the destiny-correlated observable signals.
inline constexpr double kLongDays = 30.0;
}  // namespace core_thresholds

namespace {

using telemetry::CivilDateTime;
using telemetry::Edition;
using telemetry::kSecondsPerDay;
using telemetry::kSecondsPerHour;
using telemetry::SloLadder;
using telemetry::Timestamp;
using telemetry::ToCivil;

int SampleIndexByWeights(const double* weights, int n, Rng& rng) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += weights[i];
  double u = rng.Uniform() * total;
  for (int i = 0; i < n; ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return n - 1;
}

// Cheapest-biased initial SLO within an edition: weight halves per step
// up the ladder (most users start small).
int SampleInitialSlo(Edition edition, Rng& rng) {
  const std::vector<int> slos = telemetry::SlosOfEdition(edition);
  std::vector<double> weights(slos.size());
  double w = 1.0;
  for (size_t i = 0; i < slos.size(); ++i) {
    weights[i] = w;
    w *= 0.5;
  }
  const int idx =
      SampleIndexByWeights(weights.data(), static_cast<int>(slos.size()), rng);
  return slos[static_cast<size_t>(idx)];
}

// Samples a creation timestamp honoring the archetype's calendar
// pattern, in region-local civil time.
Timestamp SampleCreationTime(const CreationPattern& pattern,
                             const RegionConfig& config, Rng& rng) {
  const double window_days = config.window_days();
  const int64_t offset_seconds =
      static_cast<int64_t>(config.utc_offset_minutes) * 60;
  for (int attempt = 0; attempt < 300; ++attempt) {
    double day_offset;
    if (pattern.front_load_days > 0.0) {
      day_offset = rng.Exponential(1.0 / pattern.front_load_days);
      if (day_offset >= window_days) continue;
    } else {
      day_offset = rng.Uniform(0.0, window_days);
    }
    // Representative local noon of the candidate day.
    const Timestamp day_utc =
        config.window_start +
        static_cast<int64_t>(day_offset) * kSecondsPerDay;
    const CivilDateTime local =
        ToCivil(day_utc + 12 * kSecondsPerHour, config.utc_offset_minutes);
    const bool weekend = local.day_of_week >= 6;
    const bool holiday =
        config.holidays.IsHolidayDate(local.year, local.month, local.day);
    if (weekend && !rng.Bernoulli(pattern.weekend_probability)) continue;
    if (holiday && !rng.Bernoulli(pattern.holiday_probability)) continue;
    int hour;
    if (!weekend && !holiday &&
        rng.Bernoulli(pattern.business_hours_probability)) {
      hour = static_cast<int>(rng.UniformInt(8, 17));
    } else {
      hour = static_cast<int>(rng.UniformInt(0, 23));
    }
    const Timestamp local_ts = telemetry::MakeTimestamp(
        local.year, local.month, local.day, hour,
        static_cast<int>(rng.UniformInt(0, 59)),
        static_cast<int>(rng.UniformInt(0, 59)));
    const Timestamp utc = local_ts - offset_seconds;
    if (utc >= config.window_start && utc < config.window_end) return utc;
  }
  // Pathological pattern; fall back to a uniform draw.
  return config.window_start +
         static_cast<int64_t>(rng.Uniform() *
                              static_cast<double>(config.window_end -
                                                  config.window_start));
}

// A pending SLO-change intent; resolved against the running SLO when
// the schedule is applied in time order.
struct SloIntent {
  Timestamp ts;
  enum class Kind { kSetExact, kStepWithinEdition, kEditionUpgrade } kind;
  int exact_slo = 0;  ///< For kSetExact.
  int step = 0;       ///< For kStepWithinEdition: +1 / -1.
};

// Finds the next local civil time with the given day-of-week and hour,
// strictly after `after`.
Timestamp NextLocalWeekdayHour(Timestamp after, int target_dow,
                               int target_hour, int utc_offset_minutes) {
  const int64_t offset = static_cast<int64_t>(utc_offset_minutes) * 60;
  const CivilDateTime local = ToCivil(after, utc_offset_minutes);
  Timestamp candidate_local_day =
      telemetry::MakeTimestamp(local.year, local.month, local.day);
  for (int add = 0; add <= 14; ++add) {
    const Timestamp day = candidate_local_day + add * kSecondsPerDay;
    const CivilDateTime c = ToCivil(day + 12 * kSecondsPerHour, 0);
    if (c.day_of_week != target_dow) continue;
    const Timestamp local_ts = day + target_hour * kSecondsPerHour;
    const Timestamp utc = local_ts - offset;
    if (utc > after) return utc;
  }
  return after + 7 * kSecondsPerDay;  // unreachable fallback
}

// Builds the SLO-change schedule for one database. `end_cap` is
// exclusive: all change events land strictly before it.
std::vector<telemetry::SloChange> BuildSloSchedule(
    const ArchetypeProfile& profile, int initial_slo, Timestamp created,
    Timestamp end_cap, const RegionConfig& config, Rng& rng) {
  std::vector<telemetry::SloChange> out;
  if (end_cap <= created + kSecondsPerHour) return out;
  const Edition edition0 = SloLadder()[initial_slo].edition;
  const double life_days = static_cast<double>(end_cap - created) /
                           static_cast<double>(kSecondsPerDay);

  int current = initial_slo;
  // Weekend scaling: Premium databases of this archetype downgrade to
  // S3 on Friday evenings and restore Monday mornings.
  if (edition0 == Edition::kPremium && life_days > 10.0 &&
      rng.Bernoulli(profile.slo.weekend_scaler_probability)) {
    const int s3 = telemetry::SloIndexByName("S3");
    const int premium_slo = initial_slo;
    Timestamp t = NextLocalWeekdayHour(created + kSecondsPerHour, 5, 17,
                                       config.utc_offset_minutes);
    while (true) {
      const Timestamp down =
          t + static_cast<int64_t>(rng.Uniform(-2.0, 2.0) * kSecondsPerHour);
      if (down >= end_cap || down <= created) break;
      out.push_back({down, current, s3});
      current = s3;
      const Timestamp monday =
          NextLocalWeekdayHour(down, 1, 8, config.utc_offset_minutes) +
          static_cast<int64_t>(rng.Uniform(0.0, 2.0) * kSecondsPerHour);
      if (monday >= end_cap) break;
      out.push_back({monday, current, premium_slo});
      current = premium_slo;
      t = NextLocalWeekdayHour(monday, 5, 17, config.utc_offset_minutes);
    }
    return out;
  }

  // Weekly within-edition level moves and a rare permanent edition
  // upgrade, merged in time order.
  std::vector<SloIntent> intents;
  const int weeks = static_cast<int>(life_days / 7.0);
  for (int wk = 0; wk < weeks; ++wk) {
    if (!rng.Bernoulli(profile.slo.weekly_level_change_probability)) continue;
    const Timestamp ts =
        created + static_cast<int64_t>((static_cast<double>(wk) +
                                        rng.Uniform()) *
                                       7.0 * kSecondsPerDay);
    SloIntent intent;
    intent.ts = ts;
    intent.kind = SloIntent::Kind::kStepWithinEdition;
    intent.step = rng.Bernoulli(0.5) ? 1 : -1;
    intents.push_back(intent);
  }
  if (life_days > 3.0 &&
      rng.Bernoulli(profile.slo.lifetime_edition_upgrade_probability)) {
    SloIntent intent;
    intent.ts = created + kSecondsPerDay +
                static_cast<int64_t>(
                    rng.Uniform() *
                    static_cast<double>(end_cap - created - kSecondsPerDay));
    intent.kind = SloIntent::Kind::kEditionUpgrade;
    intents.push_back(intent);
  }
  std::sort(intents.begin(), intents.end(),
            [](const SloIntent& a, const SloIntent& b) { return a.ts < b.ts; });
  Timestamp last_ts = created;
  for (const SloIntent& intent : intents) {
    Timestamp ts = std::max(intent.ts, last_ts + 60);
    if (ts >= end_cap) continue;
    int next = current;
    const Edition cur_edition = SloLadder()[current].edition;
    switch (intent.kind) {
      case SloIntent::Kind::kStepWithinEdition: {
        const std::vector<int> slos = telemetry::SlosOfEdition(cur_edition);
        const auto it = std::find(slos.begin(), slos.end(), current);
        int pos = static_cast<int>(it - slos.begin()) + intent.step;
        pos = std::clamp(pos, 0, static_cast<int>(slos.size()) - 1);
        next = slos[static_cast<size_t>(pos)];
        break;
      }
      case SloIntent::Kind::kEditionUpgrade: {
        if (cur_edition == Edition::kBasic) {
          next = telemetry::CheapestSloOfEdition(Edition::kStandard);
        } else if (cur_edition == Edition::kStandard) {
          next = telemetry::CheapestSloOfEdition(Edition::kPremium);
        }
        break;
      }
      case SloIntent::Kind::kSetExact:
        next = intent.exact_slo;
        break;
    }
    if (next == current) continue;
    out.push_back({ts, current, next});
    current = next;
    last_ts = ts;
  }
  return out;
}

// Emits size samples: dense (6-hourly) over the first three days of
// life — the window the x=2-day features observe — then weekly.
void EmitSizeSamples(const ArchetypeProfile& profile, Timestamp created,
                     Timestamp end_cap, double lifetime_days,
                     telemetry::DatabaseId db, telemetry::SubscriptionId sub,
                     telemetry::TelemetryStore& store, Rng& rng) {
  const SizeModel& m = profile.size;
  const double size0 = rng.Uniform(m.initial_min_mb, m.initial_max_mb);
  // Databases destined to be dropped soon are loaded less aggressively
  // (abandoned experiments stop growing); long-lived workloads keep
  // ingesting. This is the learnable size signal the paper's
  // "rate of change in size" feature targets (section 4.2).
  const double destiny_growth =
      0.3 + 0.7 * std::min(1.0, lifetime_days / 45.0);
  const double g_early =
      std::log1p(m.early_daily_growth * destiny_growth);
  const double g_late = std::log1p(m.late_daily_growth * destiny_growth);

  std::vector<Timestamp> times;
  const Timestamp first = created + kSecondsPerHour;
  for (Timestamp t = first; t < created + 3 * kSecondsPerDay;
       t += 6 * kSecondsPerHour) {
    times.push_back(t);
  }
  for (Timestamp t = created + 7 * kSecondsPerDay;; t += 7 * kSecondsPerDay) {
    if (t >= end_cap) break;
    times.push_back(t);
  }
  if (times.empty() && end_cap > created + 120) {
    times.push_back(created + 60);
  }
  for (Timestamp t : times) {
    if (t >= end_cap) continue;
    const double days = static_cast<double>(t - created) /
                        static_cast<double>(kSecondsPerDay);
    const double log_size = std::log(size0) +
                            g_early * std::min(days, 7.0) +
                            g_late * std::max(0.0, days - 7.0) +
                            rng.Normal(0.0, m.noise_sigma);
    // The store tolerates any positive size; cap at 4 TB for sanity.
    const double size_mb = std::min(std::exp(log_size), 4.0 * 1024 * 1024);
    Status s = store.Append(telemetry::MakeSizeSampleEvent(t, db, sub, size_mb));
    (void)s;  // Append only fails on invalid ids, which we control.
  }
}

}  // namespace

Result<telemetry::TelemetryStore> SimulateRegion(const RegionConfig& config,
                                                 SimulationSummary* summary) {
  if (config.window_end <= config.window_start) {
    return Status::InvalidArgument("window_end must exceed window_start");
  }
  if (config.num_subscriptions == 0) {
    return Status::InvalidArgument("num_subscriptions must be positive");
  }
  telemetry::TelemetryStore store(config.name, config.utc_offset_minutes,
                                  config.holidays, config.window_start,
                                  config.window_end);
  SimulationSummary local_summary;
  local_summary.num_subscriptions = config.num_subscriptions;

  const Rng root(config.seed);
  const double window_days = config.window_days();
  telemetry::DatabaseId next_db = 0;
  telemetry::ServerId next_server = 0;

  for (size_t sub = 0; sub < config.num_subscriptions; ++sub) {
    Rng rng = root.Fork(sub + 1);
    const Archetype archetype = config.mix.Sample(rng);
    const ArchetypeProfile& profile = GetArchetypeProfile(archetype);
    ++local_summary
          .subscriptions_per_archetype[static_cast<size_t>(archetype)];

    const int sub_type = SampleIndexByWeights(
        profile.subscription_weights.data(),
        telemetry::kNumSubscriptionTypes, rng);

    // One or two logical servers per subscription.
    const int num_servers = rng.Bernoulli(0.2) ? 2 : 1;
    std::vector<telemetry::ServerId> server_ids;
    std::vector<std::string> server_names;
    for (int s = 0; s < num_servers; ++s) {
      server_ids.push_back(next_server++);
      server_names.push_back(GenerateServerName(profile.name_style, rng));
    }

    // Database volume scales with the window length (profiles are
    // calibrated for a 150-day window).
    const double scale = window_days / 150.0;
    const int64_t extra = rng.Poisson(profile.mean_databases * scale);
    const int64_t count = profile.min_databases + extra;

    for (int64_t d = 0; d < count; ++d) {
      const int edition_idx = SampleIndexByWeights(
          profile.edition_weights.data(), telemetry::kNumEditions, rng);
      const Edition edition = static_cast<Edition>(edition_idx);
      const int slo = SampleInitialSlo(edition, rng);

      const double lifetime_days =
          profile.lifetime[static_cast<size_t>(edition_idx)]->Sample(rng);
      const bool destined_long =
          lifetime_days > core_thresholds::kLongDays;

      // Throwaway databases skew toward scripted off-hours creation;
      // keepers toward deliberate business-hours creation. A mild
      // modulation: most of the calendar signal still comes from the
      // archetype itself.
      CreationPattern pattern = profile.creation;
      pattern.business_hours_probability = std::clamp(
          pattern.business_hours_probability * (destined_long ? 1.15 : 0.7),
          0.0, 0.95);
      const Timestamp created = SampleCreationTime(pattern, config, rng);
      const Timestamp drop_ts =
          created + static_cast<int64_t>(lifetime_days *
                                         static_cast<double>(kSecondsPerDay));
      const bool dropped_in_window = drop_ts < config.window_end;
      const Timestamp end_cap =
          std::min(drop_ts, config.window_end);

      const telemetry::DatabaseId db = next_db++;
      const int srv = static_cast<int>(
          rng.UniformInt(0, static_cast<int64_t>(server_ids.size()) - 1));

      telemetry::DatabaseCreatedPayload payload;
      payload.server_id = server_ids[static_cast<size_t>(srv)];
      payload.server_name = server_names[static_cast<size_t>(srv)];
      NamePurpose purpose = NamePurpose::kNeutral;
      if (rng.Uniform() < 0.55) {
        purpose =
            destined_long ? NamePurpose::kKeeper : NamePurpose::kScratch;
      }
      payload.database_name =
          GenerateDatabaseName(profile.name_style, rng, purpose);
      payload.slo_index = slo;
      payload.subscription_type =
          static_cast<telemetry::SubscriptionType>(sub_type);
      CLOUDSURV_RETURN_NOT_OK(store.Append(telemetry::MakeCreatedEvent(
          created, db, sub, std::move(payload))));

      for (const telemetry::SloChange& change :
           BuildSloSchedule(profile, slo, created, end_cap, config, rng)) {
        CLOUDSURV_RETURN_NOT_OK(store.Append(telemetry::MakeSloChangedEvent(
            change.timestamp, db, sub, change.old_slo_index,
            change.new_slo_index)));
      }
      EmitSizeSamples(profile, created, end_cap, lifetime_days, db, sub,
                      store, rng);
      if (dropped_in_window) {
        CLOUDSURV_RETURN_NOT_OK(
            store.Append(telemetry::MakeDroppedEvent(drop_ts, db, sub)));
      }
      ++local_summary
            .databases_per_archetype[static_cast<size_t>(archetype)];
    }
  }

  CLOUDSURV_RETURN_NOT_OK(store.Finalize());
  local_summary.num_databases = store.num_databases();
  local_summary.num_events = store.num_events();
  if (summary != nullptr) *summary = local_summary;
  return store;
}

Result<std::vector<telemetry::Event>> GenerateEventStream(
    const RegionConfig& config, SimulationSummary* summary) {
  CLOUDSURV_ASSIGN_OR_RETURN(telemetry::TelemetryStore store,
                             SimulateRegion(config, summary));
  // Finalize() has already sorted the log by (timestamp, database,
  // lifecycle rank), which is exactly the replay order.
  return store.events();
}

}  // namespace cloudsurv::simulator
