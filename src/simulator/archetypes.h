#ifndef CLOUDSURV_SIMULATOR_ARCHETYPES_H_
#define CLOUDSURV_SIMULATOR_ARCHETYPES_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "simulator/name_generator.h"
#include "stats/distributions.h"
#include "telemetry/types.h"

namespace cloudsurv::simulator {

/// Persistent behaviour classes of subscriptions. The paper observes
/// that customers follow stable usage patterns — "certain customers have
/// usage patterns that call for frequent cycling of databases"
/// (section 1, Observation 3.1) — and that subscription history is the
/// most predictive feature family (section 5.4). The simulator encodes
/// those patterns as latent archetypes drawn once per subscription.
enum class Archetype : uint8_t {
  /// Automated CI/CD pipelines: high creation volume, almost all
  /// databases dropped within hours (ephemeral-only subscriptions).
  kCiEphemeralBot = 0,
  /// Dev/test teams cycling through scratch databases.
  kDevTestCycler = 1,
  /// New users evaluating the service; most give up quickly.
  kTrialExplorer = 2,
  /// Production workloads; long-lived, weekend SLO scaling on Premium.
  kProductionSteady = 3,
  /// Personal / side projects, mostly Basic, slow churn.
  kHobbyProject = 4,
  /// Incentive-offer driven usage that ends when the offer expires
  /// (~120 days after creation; the Figure 1 cliff).
  kCampaignSeasonal = 5,
  /// Automated weekly data refresh jobs living a few weeks each —
  /// lifetimes straddle the 30-day boundary (the paper's "hard to
  /// classify" mass, section 5.5).
  kBatchRefresher = 6,
  /// Short performance/load-test bursts on Premium hardware.
  kPremiumBurst = 7,
};

inline constexpr int kNumArchetypes = 8;

/// Stable display name for an archetype.
const char* ArchetypeToString(Archetype a);

/// When during the day/week an archetype creates databases.
struct CreationPattern {
  /// Probability a creation happens during local business hours
  /// (8:00-18:00) of a working day; the rest is uniform over all hours.
  double business_hours_probability = 0.5;
  /// Probability a creation is allowed on a weekend day.
  double weekend_probability = 0.3;
  /// Probability a creation is allowed on a regional holiday.
  double holiday_probability = 0.3;
  /// If > 0, creations concentrate in the first `front_load_days` days
  /// of the observation window (campaign behaviour); otherwise they are
  /// uniform over the window.
  double front_load_days = 0.0;
};

/// Data-size trajectory parameters (megabytes).
struct SizeModel {
  double initial_min_mb = 10.0;
  double initial_max_mb = 200.0;
  /// Mean daily relative growth during the first week (0.05 = +5%/day).
  double early_daily_growth = 0.02;
  /// Mean daily relative growth afterwards.
  double late_daily_growth = 0.005;
  /// Multiplicative lognormal noise sigma applied per sample.
  double noise_sigma = 0.02;
};

/// SLO-change behaviour knobs.
struct SloBehavior {
  /// Probability (per database) of being a weekend scaler: Premium
  /// databases downgraded every Friday evening and upgraded Monday
  /// morning (section 2: "users scale down their SLOs on Fridays").
  /// Weekend scaling crosses the edition boundary (P* -> S3), producing
  /// the large Premium-"changed" group of Figure 3 / Observation 3.3.
  double weekend_scaler_probability = 0.0;
  /// Per-week probability of a one-step performance-level change within
  /// the same edition (S1 -> S2 etc.; Basic has a single level, so for
  /// Basic this can only cross editions and is applied accordingly).
  double weekly_level_change_probability = 0.0;
  /// Probability of one permanent edition upgrade during the lifetime
  /// (e.g. Basic -> S0 when a project becomes serious).
  double lifetime_edition_upgrade_probability = 0.0;
};

/// Full behavioural profile of an archetype.
struct ArchetypeProfile {
  Archetype kind = Archetype::kDevTestCycler;
  /// Mean number of databases created per subscription over a 150-day
  /// window (Poisson; plus `min_databases`).
  double mean_databases = 3.0;
  int min_databases = 1;
  /// Edition choice weights (Basic, Standard, Premium).
  std::array<double, 3> edition_weights = {1.0, 1.0, 0.0};
  /// Lifetime distribution per edition, in days.
  std::array<std::shared_ptr<const stats::Distribution>, 3> lifetime;
  /// Subscription-type choice weights, indexed by SubscriptionType.
  std::array<double, telemetry::kNumSubscriptionTypes> subscription_weights =
      {0, 1, 0, 0, 0, 0};
  NameStyle name_style = NameStyle::kHumanWords;
  CreationPattern creation;
  SizeModel size;
  SloBehavior slo;
};

/// The fixed profile table. Profiles are built once and shared.
const ArchetypeProfile& GetArchetypeProfile(Archetype a);

/// A (archetype, weight) mixture describing a region's customer base.
struct ArchetypeMix {
  std::array<double, kNumArchetypes> weights{};

  /// Draws an archetype proportionally to weight.
  Archetype Sample(Rng& rng) const;
};

/// The default mix used by the three region presets (individual regions
/// perturb it slightly).
ArchetypeMix DefaultArchetypeMix();

}  // namespace cloudsurv::simulator

#endif  // CLOUDSURV_SIMULATOR_ARCHETYPES_H_
