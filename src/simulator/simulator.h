#ifndef CLOUDSURV_SIMULATOR_SIMULATOR_H_
#define CLOUDSURV_SIMULATOR_SIMULATOR_H_

#include <array>
#include <cstddef>

#include "common/status.h"
#include "simulator/archetypes.h"
#include "simulator/region.h"
#include "telemetry/store.h"

namespace cloudsurv::simulator {

/// Aggregate counts produced by one simulation run.
struct SimulationSummary {
  size_t num_subscriptions = 0;
  size_t num_databases = 0;
  size_t num_events = 0;
  std::array<size_t, kNumArchetypes> subscriptions_per_archetype{};
  std::array<size_t, kNumArchetypes> databases_per_archetype{};
};

/// Simulates a region's control plane over its observation window and
/// returns the finalized telemetry store.
///
/// The generative process (per subscription): draw a persistent
/// behaviour archetype and commercial subscription type, a logical
/// server (name style matching the archetype's automation level), then a
/// Poisson number of database creations. Each database gets a creation
/// time from the archetype's calendar pattern (business hours, weekend
/// and holiday propensities, optional campaign front-loading), an
/// edition + initial SLO, a name, a lifetime draw from the archetype's
/// per-edition mixture, an SLO-change schedule (weekend Premium scaling,
/// within-edition level moves, rare permanent edition upgrades) and a
/// size-sample trajectory. Databases alive at window_end are
/// right-censored: no drop event is emitted for them.
///
/// Deterministic: equal (config, seed) yields byte-identical telemetry.
Result<telemetry::TelemetryStore> SimulateRegion(
    const RegionConfig& config, SimulationSummary* summary = nullptr);

/// Simulates a region and returns its event log in timestamp order —
/// the stream a live control plane would have emitted over the window,
/// ready to be replayed through the serving engine (serving/
/// scoring_engine.h). Equivalent to SimulateRegion(...)->events() but
/// without retaining the materialized store.
Result<std::vector<telemetry::Event>> GenerateEventStream(
    const RegionConfig& config, SimulationSummary* summary = nullptr);

}  // namespace cloudsurv::simulator

#endif  // CLOUDSURV_SIMULATOR_SIMULATOR_H_
