#include "simulator/name_generator.h"

#include <array>
#include <cstdio>

namespace cloudsurv::simulator {

namespace {

constexpr std::array<const char*, 28> kWords = {
    "sales",    "crm",     "inventory", "orders",  "analytics", "hr",
    "payroll",  "billing", "customer",  "report",  "test",      "demo",
    "app",      "data",    "prod",      "dev",     "staging",   "web",
    "shop",     "portal",  "metrics",   "backup",  "main",      "catalog",
    "events",   "users",   "finance",   "support"};

constexpr std::array<const char*, 10> kScratchWords = {
    "test", "demo", "tmp", "scratch", "sandbox",
    "trial", "temp", "old",  "copy",    "junk"};

constexpr std::array<const char*, 10> kKeeperWords = {
    "prod",   "main",  "core",   "orders", "sales",
    "billing", "live", "primary", "customer", "app"};

constexpr std::array<const char*, 12> kServerWords = {
    "contoso", "fabrikam", "adventure", "northwind", "tailspin", "wingtip",
    "litware", "proseware", "alpine",   "lakeshore", "redmond",  "harbor"};

const char* PickWord(Rng& rng) {
  return kWords[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(kWords.size()) - 1))];
}

// Picks a word with a 50% bias toward the purpose-specific pool.
const char* PickPurposeWord(NamePurpose purpose, Rng& rng) {
  if (purpose == NamePurpose::kScratch && rng.Uniform() < 0.50) {
    return kScratchWords[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kScratchWords.size()) - 1))];
  }
  if (purpose == NamePurpose::kKeeper && rng.Uniform() < 0.50) {
    return kKeeperWords[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kKeeperWords.size()) - 1))];
  }
  return PickWord(rng);
}

const char* PickServerWord(Rng& rng) {
  return kServerWords[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(kServerWords.size()) - 1))];
}

std::string RandomAlnum(Rng& rng, int len) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out += kAlphabet[static_cast<size_t>(rng.UniformInt(0, 35))];
  }
  return out;
}

std::string RandomHex(Rng& rng, int len) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out += kHex[static_cast<size_t>(rng.UniformInt(0, 15))];
  }
  return out;
}

std::string HumanName(Rng& rng, NamePurpose purpose) {
  std::string name = PickPurposeWord(purpose, rng);
  const double roll = rng.Uniform();
  if (roll < 0.25) {
    // Two words, occasionally the same one twice ("testtest").
    name += rng.Uniform() < 0.15 ? name : std::string(PickWord(rng));
  } else if (roll < 0.45) {
    // Word plus a short version digit ("sales2").
    name += std::to_string(rng.UniformInt(1, 9));
  } else if (roll < 0.55) {
    name += "-";
    name += PickWord(rng);
  }
  return name;
}

std::string AutomatedName(Rng& rng, NamePurpose purpose) {
  std::string name = PickPurposeWord(purpose, rng);
  name += "-";
  if (rng.Uniform() < 0.5) {
    name += RandomHex(rng, static_cast<int>(rng.UniformInt(10, 16)));
  } else {
    name += RandomAlnum(rng, static_cast<int>(rng.UniformInt(8, 14)));
  }
  return name;
}

std::string DatedName(Rng& rng, NamePurpose purpose) {
  std::string name = PickPurposeWord(purpose, rng);
  // Plausible build-date stamp within the study period.
  const int month = static_cast<int>(rng.UniformInt(1, 5));
  const int day = static_cast<int>(rng.UniformInt(1, 28));
  char stamp[16];
  std::snprintf(stamp, sizeof(stamp), "-2017%02d%02d-%d", month, day,
                static_cast<int>(rng.UniformInt(1, 40)));
  name += stamp;
  return name;
}

}  // namespace

std::string GenerateDatabaseName(NameStyle style, Rng& rng,
                                 NamePurpose purpose) {
  switch (style) {
    case NameStyle::kHumanWords:
      return HumanName(rng, purpose);
    case NameStyle::kAutomatedSuffix:
      return AutomatedName(rng, purpose);
    case NameStyle::kSemiAutomatedDated:
      return DatedName(rng, purpose);
  }
  return HumanName(rng, purpose);
}

std::string GenerateServerName(NameStyle style, Rng& rng) {
  switch (style) {
    case NameStyle::kHumanWords: {
      std::string name = PickServerWord(rng);
      name += "-sql";
      if (rng.Uniform() < 0.4) name += std::to_string(rng.UniformInt(1, 99));
      return name;
    }
    case NameStyle::kAutomatedSuffix: {
      std::string name = "srv-";
      name += RandomHex(rng, 12);
      return name;
    }
    case NameStyle::kSemiAutomatedDated: {
      std::string name = PickServerWord(rng);
      name += "-";
      name += std::to_string(rng.UniformInt(100, 999));
      return name;
    }
  }
  return "server";
}

}  // namespace cloudsurv::simulator
