#include "simulator/archetypes.h"

#include <cmath>

namespace cloudsurv::simulator {

namespace {

using stats::Distribution;
using stats::LogNormalDistribution;
using stats::MixtureDistribution;
using stats::WeibullDistribution;

std::shared_ptr<const Distribution> LogN(double median_days, double sigma) {
  return std::make_shared<LogNormalDistribution>(std::log(median_days),
                                                 sigma);
}

std::shared_ptr<const Distribution> Weib(double shape, double scale) {
  return std::make_shared<WeibullDistribution>(shape, scale);
}

std::shared_ptr<const Distribution> Mix(
    std::vector<std::shared_ptr<const Distribution>> comps,
    std::vector<double> weights) {
  auto result =
      MixtureDistribution::Make(std::move(comps), std::move(weights));
  // The component tables below are static and validated by tests; a
  // failure here is a programming error.
  return std::make_shared<MixtureDistribution>(std::move(result).value());
}

// Lifetime mixtures, in days. Component roles: an "ephemeral" Weibull
// under 2 days, a "short" lognormal with most mass in (2, 30], and a
// "long" lognormal beyond 30. The weights per archetype set each
// edition subgroup's class balance (see DESIGN.md section 4).
ArchetypeProfile MakeCiBot() {
  ArchetypeProfile p;
  p.kind = Archetype::kCiEphemeralBot;
  p.mean_databases = 40.0;
  p.min_databases = 4;
  p.edition_weights = {0.50, 0.45, 0.05};
  auto life = Weib(0.9, 0.25);  // hours; essentially always ephemeral
  p.lifetime = {life, life, life};
  p.subscription_weights = {0.0, 0.2, 0.5, 0.3, 0.0, 0.0};
  p.name_style = NameStyle::kAutomatedSuffix;
  p.creation = {0.10, 1.0, 1.0, 0.0};
  p.size = {5.0, 50.0, 0.0, 0.0, 0.01};
  p.slo = {0.0, 0.0, 0.0};
  return p;
}

ArchetypeProfile MakeDevTest() {
  ArchetypeProfile p;
  p.kind = Archetype::kDevTestCycler;
  p.mean_databases = 8.0;
  p.min_databases = 1;
  p.edition_weights = {0.30, 0.55, 0.15};
  auto life = Mix({Weib(1.1, 1.0), LogN(12.0, 0.75), LogN(85.0, 0.9)},
                  {0.28, 0.40, 0.32});
  p.lifetime = {life, life, life};
  p.subscription_weights = {0.0, 0.2, 0.2, 0.6, 0.0, 0.0};
  p.name_style = NameStyle::kSemiAutomatedDated;
  p.creation = {0.85, 0.15, 0.10, 0.0};
  p.size = {20.0, 300.0, 0.08, 0.01, 0.03};
  p.slo = {0.0, 0.04, 0.02};
  return p;
}

ArchetypeProfile MakeTrial() {
  ArchetypeProfile p;
  p.kind = Archetype::kTrialExplorer;
  p.mean_databases = 0.7;
  p.min_databases = 1;
  p.edition_weights = {0.70, 0.28, 0.02};
  auto life = Mix({Weib(1.0, 0.8), LogN(7.0, 0.9), LogN(150.0, 0.9)},
                  {0.26, 0.30, 0.44});
  p.lifetime = {life, life, life};
  p.subscription_weights = {0.75, 0.10, 0.0, 0.0, 0.0, 0.15};
  p.name_style = NameStyle::kHumanWords;
  p.creation = {0.60, 0.50, 0.40, 0.0};
  p.size = {5.0, 100.0, 0.01, 0.002, 0.02};
  p.slo = {0.0, 0.0, 0.01};
  return p;
}

ArchetypeProfile MakeProduction() {
  ArchetypeProfile p;
  p.kind = Archetype::kProductionSteady;
  p.mean_databases = 2.0;
  p.min_databases = 1;
  p.edition_weights = {0.10, 0.65, 0.25};
  auto life = Mix({Weib(1.0, 0.5), LogN(15.0, 0.7), LogN(400.0, 1.0)},
                  {0.04, 0.08, 0.88});
  p.lifetime = {life, life, life};
  p.subscription_weights = {0.0, 0.35, 0.50, 0.0, 0.15, 0.0};
  p.name_style = NameStyle::kHumanWords;
  p.creation = {0.90, 0.10, 0.05, 0.0};
  p.size = {200.0, 3000.0, 0.03, 0.01, 0.02};
  p.slo = {0.60, 0.06, 0.05};
  return p;
}

ArchetypeProfile MakeHobby() {
  ArchetypeProfile p;
  p.kind = Archetype::kHobbyProject;
  p.mean_databases = 2.5;
  p.min_databases = 1;
  p.edition_weights = {0.88, 0.11, 0.01};
  auto life = Mix({Weib(1.0, 0.8), LogN(14.0, 0.8), LogN(350.0, 1.0)},
                  {0.07, 0.10, 0.83});
  p.lifetime = {life, life, life};
  p.subscription_weights = {0.20, 0.60, 0.0, 0.0, 0.0, 0.20};
  p.name_style = NameStyle::kHumanWords;
  p.creation = {0.30, 0.80, 0.80, 0.0};
  p.size = {10.0, 150.0, 0.01, 0.003, 0.02};
  p.slo = {0.0, 0.0, 0.04};
  return p;
}

ArchetypeProfile MakeCampaign() {
  ArchetypeProfile p;
  p.kind = Archetype::kCampaignSeasonal;
  p.mean_databases = 2.5;
  p.min_databases = 1;
  p.edition_weights = {0.60, 0.40, 0.0};
  // 75% of campaign databases live until the incentive offer expires
  // ~120 days after creation (tight lognormal), producing the Figure 1
  // cliff; the rest churn earlier.
  auto life =
      Mix({LogN(120.0, 0.05), LogN(25.0, 0.8)}, {0.80, 0.20});
  p.lifetime = {life, life, life};
  p.subscription_weights = {0.50, 0.50, 0.0, 0.0, 0.0, 0.0};
  p.name_style = NameStyle::kHumanWords;
  p.creation = {0.60, 0.40, 0.30, 35.0};
  p.size = {50.0, 500.0, 0.02, 0.005, 0.02};
  p.slo = {0.0, 0.0, 0.0};
  return p;
}

ArchetypeProfile MakeBatch() {
  ArchetypeProfile p;
  p.kind = Archetype::kBatchRefresher;
  p.mean_databases = 8.0;
  p.min_databases = 2;
  p.edition_weights = {0.15, 0.60, 0.25};
  // Lifetimes straddle the 30-day boundary: weekly refresh cadences of
  // roughly 3 or 4-5 weeks. These are the paper's intrinsically
  // uncertain databases (section 5.5).
  auto life = Mix({LogN(21.0, 0.35), LogN(32.0, 0.35)}, {0.45, 0.55});
  p.lifetime = {life, life, life};
  p.subscription_weights = {0.0, 0.30, 0.50, 0.0, 0.20, 0.0};
  p.name_style = NameStyle::kAutomatedSuffix;
  p.creation = {0.05, 0.90, 1.0, 0.0};
  p.size = {100.0, 1000.0, 0.0, 0.0, 0.05};
  p.slo = {0.0, 0.0, 0.0};
  return p;
}

ArchetypeProfile MakePremiumBurst() {
  ArchetypeProfile p;
  p.kind = Archetype::kPremiumBurst;
  p.mean_databases = 5.0;
  p.min_databases = 1;
  p.edition_weights = {0.0, 0.30, 0.70};
  auto life = Mix({Weib(1.0, 1.0), LogN(10.0, 0.6), LogN(60.0, 0.7)},
                  {0.15, 0.70, 0.15});
  p.lifetime = {life, life, life};
  p.subscription_weights = {0.0, 0.30, 0.60, 0.10, 0.0, 0.0};
  p.name_style = NameStyle::kSemiAutomatedDated;
  p.creation = {0.80, 0.10, 0.05, 0.0};
  p.size = {500.0, 5000.0, 0.10, 0.02, 0.03};
  p.slo = {0.0, 0.25, 0.0};
  return p;
}

}  // namespace

const char* ArchetypeToString(Archetype a) {
  switch (a) {
    case Archetype::kCiEphemeralBot:
      return "CiEphemeralBot";
    case Archetype::kDevTestCycler:
      return "DevTestCycler";
    case Archetype::kTrialExplorer:
      return "TrialExplorer";
    case Archetype::kProductionSteady:
      return "ProductionSteady";
    case Archetype::kHobbyProject:
      return "HobbyProject";
    case Archetype::kCampaignSeasonal:
      return "CampaignSeasonal";
    case Archetype::kBatchRefresher:
      return "BatchRefresher";
    case Archetype::kPremiumBurst:
      return "PremiumBurst";
  }
  return "Unknown";
}

const ArchetypeProfile& GetArchetypeProfile(Archetype a) {
  static const auto* kProfiles = new std::array<ArchetypeProfile, 8>{
      MakeCiBot(),   MakeDevTest(), MakeTrial(), MakeProduction(),
      MakeHobby(),   MakeCampaign(), MakeBatch(), MakePremiumBurst()};
  return (*kProfiles)[static_cast<size_t>(a)];
}

Archetype ArchetypeMix::Sample(Rng& rng) const {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = rng.Uniform() * total;
  for (int i = 0; i < kNumArchetypes; ++i) {
    u -= weights[static_cast<size_t>(i)];
    if (u <= 0.0) return static_cast<Archetype>(i);
  }
  return static_cast<Archetype>(kNumArchetypes - 1);
}

ArchetypeMix DefaultArchetypeMix() {
  ArchetypeMix mix;
  mix.weights[static_cast<size_t>(Archetype::kCiEphemeralBot)] = 0.03;
  mix.weights[static_cast<size_t>(Archetype::kDevTestCycler)] = 0.20;
  mix.weights[static_cast<size_t>(Archetype::kTrialExplorer)] = 0.26;
  mix.weights[static_cast<size_t>(Archetype::kProductionSteady)] = 0.16;
  mix.weights[static_cast<size_t>(Archetype::kHobbyProject)] = 0.18;
  mix.weights[static_cast<size_t>(Archetype::kCampaignSeasonal)] = 0.08;
  mix.weights[static_cast<size_t>(Archetype::kBatchRefresher)] = 0.05;
  mix.weights[static_cast<size_t>(Archetype::kPremiumBurst)] = 0.04;
  return mix;
}

}  // namespace cloudsurv::simulator
