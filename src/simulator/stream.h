#ifndef CLOUDSURV_SIMULATOR_STREAM_H_
#define CLOUDSURV_SIMULATOR_STREAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "telemetry/civil_time.h"
#include "telemetry/events.h"

namespace cloudsurv::simulator {

namespace internal {
struct StreamRep;
}  // namespace internal

/// Knobs for streaming generation.
struct StreamOptions {
  /// Width of one emitted partition. Defaults to the telemetry store's
  /// segment width so AppendEvents(partition) seals exactly one segment
  /// per pull.
  int64_t partition_seconds = 7 * telemetry::kSecondsPerDay;
};

/// Pull-based generator of a region's event log in time order, without
/// materializing the whole history.
///
/// Generation is two-phase. Open() runs a cheap pass that draws only
/// enough per database to know *when* it is created (each database has
/// its own forked RNG, so the partial replay is exact) and sorts a
/// compact creation index by (timestamp, database). NextPartition()
/// then walks that index in time order: when a creation falls inside
/// the partition being emitted, the database's full payload — name,
/// server, SLO-change schedule, size-sample trajectory, drop — is
/// generated from the same forked RNG and its future events are
/// bucketed into their partitions. Peak memory is the creation index
/// plus the compact pending buckets, not the materialized event log.
///
/// The emitted concatenation of partitions is sorted by (timestamp,
/// database, kind) — byte-identical to SimulateRegion(...)->events(),
/// which is itself implemented on top of this stream.
class RegionEventStream {
 public:
  /// One emitted time slice: `[begin, end)`, events sorted by
  /// (timestamp, database id, event kind).
  struct Partition {
    int64_t index = 0;
    telemetry::Timestamp begin = 0;
    telemetry::Timestamp end = 0;
    std::vector<telemetry::Event> events;
  };

  /// Streaming-side resource counters.
  struct Stats {
    size_t partitions_emitted = 0;
    /// High-water mark of compact future-event rows buffered across all
    /// pending partitions (40 bytes each).
    size_t peak_pending_events = 0;
    /// Bytes in the sorted creation index (fixed after Open()).
    size_t creation_index_bytes = 0;
  };

  /// Validates the config and runs the creation-index pass.
  static Result<RegionEventStream> Open(const RegionConfig& config,
                                        StreamOptions options = StreamOptions());

  ~RegionEventStream();
  RegionEventStream(RegionEventStream&&) noexcept;
  RegionEventStream& operator=(RegionEventStream&&) noexcept;
  RegionEventStream(const RegionEventStream&) = delete;
  RegionEventStream& operator=(const RegionEventStream&) = delete;

  /// Total number of partitions this stream will emit (fixed: the
  /// observation window divided into partition_seconds slices).
  size_t num_partitions() const;

  bool Done() const;

  /// Emits the next partition in time order. Must not be called once
  /// Done().
  Partition NextPartition();

  /// Population counts. Subscription/archetype tallies and
  /// num_databases are final after Open(); num_events grows as
  /// partitions are pulled and is final once Done().
  const SimulationSummary& summary() const;

  const Stats& stats() const;

 private:
  RegionEventStream();
  std::unique_ptr<internal::StreamRep> rep_;
};

}  // namespace cloudsurv::simulator

#endif  // CLOUDSURV_SIMULATOR_STREAM_H_
