#ifndef CLOUDSURV_SIMULATOR_REGION_H_
#define CLOUDSURV_SIMULATOR_REGION_H_

#include <cstdint>
#include <string>

#include "simulator/archetypes.h"
#include "telemetry/civil_time.h"

namespace cloudsurv::simulator {

/// Everything needed to simulate one Azure-like region over a fixed
/// observation window.
struct RegionConfig {
  std::string name = "Region-1";
  int utc_offset_minutes = 0;
  telemetry::HolidayCalendar holidays;
  /// Observation window (UTC). Databases are created inside the window;
  /// anything alive at `window_end` is right-censored.
  telemetry::Timestamp window_start = 0;
  telemetry::Timestamp window_end = 0;
  /// Number of customer subscriptions to simulate.
  size_t num_subscriptions = 3000;
  ArchetypeMix mix = DefaultArchetypeMix();
  uint64_t seed = 1;

  double window_days() const {
    return static_cast<double>(window_end - window_start) /
           static_cast<double>(telemetry::kSecondsPerDay);
  }
};

/// Builds one of the three study-region presets (1, 2 or 3), mirroring
/// the paper's setup of "three of the largest Azure regions" observed
/// over five months (2017-01-01 .. 2017-05-31 here):
///  - Region-1: US-like, UTC-8, US holidays, default customer mix.
///  - Region-2: EU-like, UTC+1, EU holidays, enterprise-heavier mix.
///  - Region-3: Asia-like, UTC+8, more automation (CI/batch) in the mix.
/// `num_subscriptions` scales the population; `seed` drives all
/// randomness.
Result<RegionConfig> MakeRegionPreset(int region_index,
                                      size_t num_subscriptions,
                                      uint64_t seed);

}  // namespace cloudsurv::simulator

#endif  // CLOUDSURV_SIMULATOR_REGION_H_
