#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace cloudsurv::obs {

namespace {

/// Shortest round-trippable-enough rendering: integers print without a
/// decimal point, which both formats' consumers prefer.
std::string FormatNumber(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  return buffer;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// `{k="v",...}` or empty when there are no labels. `extra` appends one
/// more pair (used for histogram `le`).
std::string RenderLabels(const LabelSet& labels,
                         const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& key, const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  };
  for (const auto& [key, value] : labels) append(key, value);
  if (extra != nullptr) append(extra->first, extra->second);
  out += "}";
  return out;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string ExportPrometheusText(const Registry& registry) {
  std::string out;
  std::string previous_family;
  for (const SeriesRef& series : registry.Series()) {
    if (series.name != previous_family) {
      previous_family = series.name;
      out += "# HELP " + series.name + " " + series.help;
      if (!series.unit.empty()) out += " [" + series.unit + "]";
      out += "\n# TYPE " + series.name + " ";
      out += TypeName(series.type);
      out += "\n";
    }
    switch (series.type) {
      case MetricType::kCounter: {
        char line[32];
        std::snprintf(line, sizeof(line), "%" PRIu64,
                      series.counter->Value());
        out += series.name + RenderLabels(series.labels, nullptr) + " " +
               line + "\n";
        break;
      }
      case MetricType::kGauge:
        out += series.name + RenderLabels(series.labels, nullptr) + " " +
               FormatNumber(series.gauge->Value()) + "\n";
        break;
      case MetricType::kHistogram: {
        const auto counts = series.histogram->BucketCounts();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
          cumulative += counts[b];
          const std::pair<std::string, std::string> le = {
              "le", b < Histogram::kNumFiniteBuckets
                        ? FormatNumber(Histogram::BucketBound(b))
                        : "+Inf"};
          char line[32];
          std::snprintf(line, sizeof(line), "%" PRIu64, cumulative);
          out += series.name + "_bucket" +
                 RenderLabels(series.labels, &le) + " " + line + "\n";
        }
        out += series.name + "_sum" + RenderLabels(series.labels, nullptr) +
               " " + FormatNumber(series.histogram->Sum()) + "\n";
        char line[32];
        std::snprintf(line, sizeof(line), "%" PRIu64, cumulative);
        out += series.name + "_count" +
               RenderLabels(series.labels, nullptr) + " " + line + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportJson(const Registry& registry) {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const SeriesRef& series : registry.Series()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + series.name + "\", \"type\": \"";
    out += TypeName(series.type);
    out += "\", \"labels\": {";
    bool first_label = true;
    for (const auto& [key, value] : series.labels) {
      if (!first_label) out += ", ";
      first_label = false;
      out += "\"" + key + "\": \"" + EscapeLabelValue(value) + "\"";
    }
    out += "}";
    switch (series.type) {
      case MetricType::kCounter: {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64,
                      series.counter->Value());
        out += std::string(", \"value\": ") + buffer;
        break;
      }
      case MetricType::kGauge:
        out += ", \"value\": " + FormatNumber(series.gauge->Value());
        break;
      case MetricType::kHistogram: {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%" PRIu64,
                      series.histogram->Count());
        out += std::string(", \"count\": ") + buffer;
        out += ", \"sum\": " + FormatNumber(series.histogram->Sum());
        out += ", \"p50\": " +
               FormatNumber(series.histogram->Quantile(0.50));
        out += ", \"p99\": " +
               FormatNumber(series.histogram->Quantile(0.99));
        break;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace cloudsurv::obs
