#ifndef CLOUDSURV_OBS_METRICS_H_
#define CLOUDSURV_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace cloudsurv::obs {

/// Process-wide observability primitives.
///
/// This layer sits *below* common (it depends only on the standard
/// library), so every other library — common's ThreadPool included —
/// may instrument itself against it. Three metric types:
///
///   Counter   — monotone event count. Hot-path increments are a
///               relaxed atomic add into a per-thread cache-line-padded
///               cell; Value() merges the cells on read, so concurrent
///               increments from any number of threads sum exactly.
///   Gauge     — a level that moves both ways (queue depth, pending
///               events). Set()/Add() on an atomic double.
///   Histogram — distribution of non-negative samples (latencies in
///               microseconds by convention) over fixed log-scale
///               buckets: powers of two from 1 to 2^25, plus overflow.
///               Quantile() interpolates inside the winning bucket and
///               is defined (0) on an empty histogram.
///
/// Metric objects are owned by a Registry and never destroyed before
/// it; call sites hold raw pointers resolved once (construction time /
/// first use), so the hot path never touches the registry mutex.
/// Series identity is (name, label set): registering the same name with
/// the same labels returns the same object, different labels a sibling
/// series of the same family.

/// Sorted (key, value) pairs identifying one series within a family.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

namespace internal {
/// Index of the calling thread's counter cell (stable per thread).
inline size_t ThreadCellIndex() {
  thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return index;
}

/// Relaxed add on an atomic double (CAS loop — atomic<double>::fetch_add
/// is C++20 and not universally implemented).
inline void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace internal

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `n` (relaxed, per-thread cell — safe and exact from any
  /// number of threads).
  void Increment(uint64_t n = 1) {
    cells_[internal::ThreadCellIndex() & (kCells - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Merged total across cells.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kCells = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, kCells> cells_;
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { internal::AtomicAdd(value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// Finite upper bounds 2^0 .. 2^25 plus the overflow bucket.
  static constexpr size_t kNumFiniteBuckets = 26;
  static constexpr size_t kNumBuckets = kNumFiniteBuckets + 1;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample (negative samples count as 0).
  void Observe(double value);

  /// Inclusive upper bound of bucket `b` (infinity for the last).
  static double BucketBound(size_t b);

  /// Estimated q-quantile (q in [0, 1]): linear interpolation inside
  /// the bucket holding the target rank; the overflow bucket reports
  /// its lower bound. Returns 0 when no samples have been recorded —
  /// empty histograms have well-defined (zero) quantiles.
  double Quantile(double q) const;

  uint64_t Count() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Consistent copy of the bucket counts (index = bucket).
  std::array<uint64_t, kNumBuckets> BucketCounts() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One registered series, as seen by exporters.
struct SeriesRef {
  std::string name;
  std::string help;
  std::string unit;  ///< e.g. "us", "events"; empty when dimensionless.
  MetricType type = MetricType::kCounter;
  LabelSet labels;
  const Counter* counter = nullptr;      ///< set iff type == kCounter
  const Gauge* gauge = nullptr;          ///< set iff type == kGauge
  const Histogram* histogram = nullptr;  ///< set iff type == kHistogram
};

/// Thread-safe name -> metric table. `Default()` is the process-wide
/// instance every library registers into; independent instances exist
/// only so tests can assert golden exporter output in isolation.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Default();

  /// Finds or creates the series (name, labels). The same pair always
  /// returns the same object. Returns nullptr if the name is already
  /// registered as a different metric type (a programming error the
  /// caller can surface).
  Counter* GetCounter(std::string_view name, std::string_view help,
                      std::string_view unit = "", LabelSet labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  std::string_view unit = "", LabelSet labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::string_view unit = "us",
                          LabelSet labels = {});

  /// Every registered series, sorted by (name, labels) so exporter
  /// output is deterministic.
  std::vector<SeriesRef> Series() const;

 private:
  struct Entry {
    std::string help;
    std::string unit;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view help,
                      std::string_view unit, MetricType type,
                      const LabelSet& labels);

  mutable std::mutex mu_;
  /// Keyed by (name, sorted labels); std::map keeps iteration sorted.
  std::map<std::pair<std::string, LabelSet>, Entry> series_;
};

/// Times a scope and records the elapsed microseconds into a histogram
/// resolved ahead of time (hot-path form: no registry lookup).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now and disarms; returns the elapsed microseconds.
  double Stop() {
    if (histogram_ == nullptr) return 0.0;
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count();
    histogram_->Observe(elapsed_us);
    histogram_ = nullptr;
    return elapsed_us;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Named trace span: resolves (or creates) the `<name>_us` histogram in
/// the given registry at construction and records its own duration on
/// destruction. Convenient for coarse phases; use ScopedTimer with a
/// pre-resolved histogram inside per-item hot loops.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     Registry* registry = &Registry::Default());
  ~TraceSpan() = default;  // timer_ records on destruction

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early; returns the elapsed microseconds.
  double End() { return timer_.Stop(); }

 private:
  ScopedTimer timer_;
};

}  // namespace cloudsurv::obs

#endif  // CLOUDSURV_OBS_METRICS_H_
