#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cloudsurv::obs {

namespace {

/// Bucket for a sample: smallest b with value <= 2^b, capped at the
/// overflow bucket.
size_t BucketIndexFor(double value) {
  if (value <= 1.0) return 0;
  const double log2v = std::log2(value);
  const double b = std::ceil(log2v);
  // Exact powers of two land in their own bucket (le bound inclusive).
  if (b >= static_cast<double>(Histogram::kNumFiniteBuckets)) {
    return Histogram::kNumFiniteBuckets;  // overflow
  }
  return static_cast<size_t>(b);
}

}  // namespace

void Histogram::Observe(double value) {
  const double v = value > 0.0 ? value : 0.0;
  buckets_[BucketIndexFor(v)].fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(sum_, v);
}

double Histogram::BucketBound(size_t b) {
  if (b >= kNumFiniteBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(b));  // 2^b
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts()
    const {
  std::array<uint64_t, kNumBuckets> counts{};
  for (size_t b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  const auto counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double clamped = std::min(1.0, std::max(0.0, q));
  const double target = clamped * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    const uint64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= target) {
      const double lower = b == 0 ? 0.0 : BucketBound(b - 1);
      if (b >= kNumFiniteBuckets) return lower;  // overflow bucket
      const double upper = BucketBound(b);
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[b]);
      return lower + within * (upper - lower);
    }
    cumulative = next;
  }
  return BucketBound(kNumFiniteBuckets - 1);
}

Registry& Registry::Default() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Registry::Entry* Registry::FindOrCreate(std::string_view name,
                                        std::string_view help,
                                        std::string_view unit,
                                        MetricType type,
                                        const LabelSet& labels) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(std::string(name), std::move(sorted));
  auto it = series_.find(key);
  if (it != series_.end()) {
    return it->second.type == type ? &it->second : nullptr;
  }
  Entry entry;
  entry.help = std::string(help);
  entry.unit = std::string(unit);
  entry.type = type;
  switch (type) {
    case MetricType::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &series_.emplace(std::move(key), std::move(entry))
              .first->second;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              std::string_view unit, LabelSet labels) {
  Entry* entry =
      FindOrCreate(name, help, unit, MetricType::kCounter, labels);
  return entry == nullptr ? nullptr : entry->counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          std::string_view unit, LabelSet labels) {
  Entry* entry = FindOrCreate(name, help, unit, MetricType::kGauge, labels);
  return entry == nullptr ? nullptr : entry->gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help,
                                  std::string_view unit, LabelSet labels) {
  Entry* entry =
      FindOrCreate(name, help, unit, MetricType::kHistogram, labels);
  return entry == nullptr ? nullptr : entry->histogram.get();
}

std::vector<SeriesRef> Registry::Series() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesRef> out;
  out.reserve(series_.size());
  for (const auto& [key, entry] : series_) {
    SeriesRef ref;
    ref.name = key.first;
    ref.labels = key.second;
    ref.help = entry.help;
    ref.unit = entry.unit;
    ref.type = entry.type;
    ref.counter = entry.counter.get();
    ref.gauge = entry.gauge.get();
    ref.histogram = entry.histogram.get();
    out.push_back(std::move(ref));
  }
  return out;  // std::map iteration is already (name, labels)-sorted
}

TraceSpan::TraceSpan(std::string_view name, Registry* registry)
    : timer_(registry->GetHistogram(std::string(name) + "_us",
                                    "Trace span duration", "us")) {}

}  // namespace cloudsurv::obs
