#ifndef CLOUDSURV_OBS_EXPORT_H_
#define CLOUDSURV_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace cloudsurv::obs {

/// Prometheus text exposition format (version 0.0.4): one
/// `# HELP` / `# TYPE` pair per family, then one sample line per
/// series; histograms expand to `_bucket{le=...}` / `_sum` / `_count`.
/// Series order is deterministic (registry order: name, then labels).
std::string ExportPrometheusText(const Registry& registry);

/// Registry state as a JSON document, matching the repo's bench
/// artifact convention:
///
///   {"metrics": [
///     {"name": ..., "type": "counter", "labels": {...}, "value": N},
///     {"name": ..., "type": "gauge", "labels": {...}, "value": X},
///     {"name": ..., "type": "histogram", "labels": {...},
///      "count": N, "sum": X, "p50": X, "p99": X}
///   ]}
///
/// Histogram bucket vectors are omitted to keep snapshots small; the
/// Prometheus exporter carries the full distribution.
std::string ExportJson(const Registry& registry);

}  // namespace cloudsurv::obs

#endif  // CLOUDSURV_OBS_EXPORT_H_
