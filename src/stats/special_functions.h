#ifndef CLOUDSURV_STATS_SPECIAL_FUNCTIONS_H_
#define CLOUDSURV_STATS_SPECIAL_FUNCTIONS_H_

/// Special mathematical functions needed by the statistical layer:
/// log-gamma, regularized incomplete gamma (for chi-squared tail
/// probabilities used by the log-rank test), the error function, and the
/// regularized incomplete beta (for Student-t / F tails).
///
/// Implementations are self-contained ports of the classic numerical
/// recipes (Lanczos approximation, series/continued-fraction expansions)
/// accurate to ~1e-12 in the ranges exercised by the library and covered
/// by the test suite against reference values.

namespace cloudsurv::stats {

/// Natural log of the gamma function for x > 0 (Lanczos approximation).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a),
/// for a > 0, x >= 0. P(a, 0) = 0; P(a, inf) = 1.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Error function and complement, accurate to ~1e-12.
double Erf(double x);
double Erfc(double x);

/// Natural log of the beta function B(a, b).
double LogBeta(double a, double b);

/// Regularized incomplete beta I_x(a, b) for a, b > 0 and x in [0, 1].
double RegularizedBeta(double x, double a, double b);

/// Survival function (upper tail) of the chi-squared distribution with
/// `df` degrees of freedom: P[X >= x]. Used to convert log-rank test
/// statistics into p-values.
double ChiSquaredSurvival(double x, double df);

/// CDF of the chi-squared distribution with `df` degrees of freedom.
double ChiSquaredCdf(double x, double df);

/// Standard normal CDF Phi(x).
double NormalCdf(double x);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// refined with one Halley step; |error| < 1e-9). Requires 0 < p < 1.
double NormalQuantile(double p);

}  // namespace cloudsurv::stats

#endif  // CLOUDSURV_STATS_SPECIAL_FUNCTIONS_H_
