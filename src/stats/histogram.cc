#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace cloudsurv::stats {

Result<Histogram> Histogram::Make(double lo, double hi, size_t num_bins) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("histogram requires lo < hi");
  }
  if (num_bins == 0) {
    return Status::InvalidArgument("histogram requires num_bins >= 1");
  }
  return Histogram(lo, hi, num_bins);
}

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(num_bins)),
      counts_(num_bins, 0) {}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  size_t idx = static_cast<size_t>((value - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // FP edge guard
  ++counts_[idx];
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double Histogram::bin_lower(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_upper(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::bin_fraction(size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

std::string Histogram::ToAsciiArt(size_t max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar =
        peak == 0 ? 0
                  : static_cast<size_t>(std::llround(
                        static_cast<double>(counts_[i]) * max_width / peak));
    out += "[" + FormatDouble(bin_lower(i), 1) + ", " +
           FormatDouble(bin_upper(i), 1) + ") ";
    out.append(bar, '#');
    out += " " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace cloudsurv::stats
