#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace cloudsurv::stats {

Summary Summarize(const std::vector<double>& values) {
  RunningStats acc;
  for (double v : values) acc.Add(v);
  Summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.variance = acc.variance();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.sum = acc.sum();
  return s;
}

double Mean(const std::vector<double>& values) {
  return Summarize(values).mean;
}

double SampleVariance(const std::vector<double>& values) {
  return Summarize(values).variance;
}

double SampleStdDev(const std::vector<double>& values) {
  return Summarize(values).stddev;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

}  // namespace cloudsurv::stats
