#include "stats/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/special_functions.h"

namespace cloudsurv::stats {

ExponentialDistribution::ExponentialDistribution(double rate) : rate_(rate) {
  assert(rate > 0.0);
}

double ExponentialDistribution::Sample(Rng& rng) const {
  return rng.Exponential(rate_);
}

double ExponentialDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-rate_ * x);
}

double ExponentialDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  return rate_ * std::exp(-rate_ * x);
}

double ExponentialDistribution::Mean() const { return 1.0 / rate_; }

double ExponentialDistribution::Quantile(double p) const {
  return -std::log1p(-p) / rate_;
}

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  assert(shape > 0.0 && scale > 0.0);
}

double WeibullDistribution::Sample(Rng& rng) const {
  return rng.Weibull(shape_, scale_);
}

double WeibullDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double WeibullDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return shape_ >= 1.0 ? (shape_ == 1.0 ? 1.0 / scale_ : 0.0)
                                     : 0.0;
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) *
         std::exp(-std::pow(z, shape_));
}

double WeibullDistribution::Mean() const {
  return scale_ * std::exp(LogGamma(1.0 + 1.0 / shape_));
}

double WeibullDistribution::Quantile(double p) const {
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  assert(sigma > 0.0);
}

double LogNormalDistribution::Sample(Rng& rng) const {
  return rng.LogNormal(mu_, sigma_);
}

double LogNormalDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return NormalCdf((std::log(x) - mu_) / sigma_);
}

double LogNormalDistribution::Pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LogNormalDistribution::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormalDistribution::Quantile(double p) const {
  return std::exp(mu_ + sigma_ * NormalQuantile(p));
}

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  assert(lo < hi);
}

double UniformDistribution::Sample(Rng& rng) const {
  return rng.Uniform(lo_, hi_);
}

double UniformDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDistribution::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  return 1.0 / (hi_ - lo_);
}

double UniformDistribution::Mean() const { return 0.5 * (lo_ + hi_); }

double UniformDistribution::Quantile(double p) const {
  return lo_ + p * (hi_ - lo_);
}

Result<MixtureDistribution> MixtureDistribution::Make(
    std::vector<std::shared_ptr<const Distribution>> components,
    std::vector<double> weights) {
  if (components.empty()) {
    return Status::InvalidArgument("mixture needs at least one component");
  }
  if (components.size() != weights.size()) {
    return Status::InvalidArgument(
        "mixture components and weights must have equal size");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("mixture weights must be non-negative");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("mixture weights must sum to > 0");
  }
  for (const auto& c : components) {
    if (c == nullptr) {
      return Status::InvalidArgument("mixture component is null");
    }
  }
  for (double& w : weights) w /= total;
  return MixtureDistribution(std::move(components), std::move(weights));
}

MixtureDistribution::MixtureDistribution(
    std::vector<std::shared_ptr<const Distribution>> components,
    std::vector<double> weights)
    : components_(std::move(components)), weights_(std::move(weights)) {
  cum_weights_.resize(weights_.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i];
    cum_weights_[i] = acc;
  }
  cum_weights_.back() = 1.0;  // guard against FP drift
}

double MixtureDistribution::Sample(Rng& rng) const {
  const double u = rng.Uniform();
  const auto it =
      std::lower_bound(cum_weights_.begin(), cum_weights_.end(), u);
  const size_t idx = static_cast<size_t>(it - cum_weights_.begin());
  return components_[std::min(idx, components_.size() - 1)]->Sample(rng);
}

double MixtureDistribution::Cdf(double x) const {
  double acc = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    acc += weights_[i] * components_[i]->Cdf(x);
  }
  return acc;
}

double MixtureDistribution::Pdf(double x) const {
  double acc = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    acc += weights_[i] * components_[i]->Pdf(x);
  }
  return acc;
}

double MixtureDistribution::Mean() const {
  double acc = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    acc += weights_[i] * components_[i]->Mean();
  }
  return acc;
}

double MixtureDistribution::Quantile(double p) const {
  // Bisection on the CDF over an expanding bracket.
  double hi = 1.0;
  while (Cdf(hi) < p && hi < 1e12) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (Cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

double KolmogorovSmirnovStatistic(std::vector<double> sample,
                                  const Distribution& dist) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    const double f = dist.Cdf(sample[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::fabs(f - lo), std::fabs(hi - f)));
  }
  return d;
}

}  // namespace cloudsurv::stats
