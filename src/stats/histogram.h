#ifndef CLOUDSURV_STATS_HISTOGRAM_H_
#define CLOUDSURV_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cloudsurv::stats {

/// Fixed-width binned histogram over [lo, hi). Values below `lo` land in
/// an underflow counter, values at or above `hi` in an overflow counter.
/// Used for telemetry summaries and report rendering.
class Histogram {
 public:
  /// Creates a histogram with `num_bins` equal-width bins spanning
  /// [lo, hi). Requires lo < hi and num_bins >= 1.
  static Result<Histogram> Make(double lo, double hi, size_t num_bins);

  /// Records one observation.
  void Add(double value);

  /// Records many observations.
  void AddAll(const std::vector<double>& values);

  size_t num_bins() const { return counts_.size(); }
  uint64_t bin_count(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }

  /// Inclusive lower edge of bin i.
  double bin_lower(size_t i) const;
  /// Exclusive upper edge of bin i.
  double bin_upper(size_t i) const;

  /// Fraction of all observations (including under/overflow) in bin i.
  double bin_fraction(size_t i) const;

  /// Renders a fixed-width ASCII bar chart, one bin per line.
  std::string ToAsciiArt(size_t max_width = 50) const;

 private:
  Histogram(double lo, double hi, size_t num_bins);

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace cloudsurv::stats

#endif  // CLOUDSURV_STATS_HISTOGRAM_H_
