#ifndef CLOUDSURV_STATS_DISTRIBUTIONS_H_
#define CLOUDSURV_STATS_DISTRIBUTIONS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace cloudsurv::stats {

/// Abstract continuous, non-negative distribution used to model database
/// lifetimes (in days). Implementations are immutable and thread-safe
/// after construction.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample using the caller's generator.
  virtual double Sample(Rng& rng) const = 0;

  /// Cumulative distribution function F(x) = P[X <= x].
  virtual double Cdf(double x) const = 0;

  /// Probability density function.
  virtual double Pdf(double x) const = 0;

  /// Mean of the distribution.
  virtual double Mean() const = 0;

  /// Quantile function F^{-1}(p) for p in (0, 1).
  virtual double Quantile(double p) const = 0;
};

/// Exponential(rate): memoryless lifetimes (pure churn processes).
class ExponentialDistribution : public Distribution {
 public:
  /// `rate` must be positive.
  explicit ExponentialDistribution(double rate);

  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Mean() const override;
  double Quantile(double p) const override;

  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Weibull(shape, scale): shape < 1 models infant-mortality style churn
/// (many early drops), shape > 1 models wear-out (drop hazard grows).
class WeibullDistribution : public Distribution {
 public:
  /// `shape` and `scale` must be positive.
  WeibullDistribution(double shape, double scale);

  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Mean() const override;
  double Quantile(double p) const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// LogNormal(mu, sigma) in log space: heavy right tail, typical for
/// long-lived production databases.
class LogNormalDistribution : public Distribution {
 public:
  /// `sigma` must be positive.
  LogNormalDistribution(double mu, double sigma);

  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Mean() const override;
  double Quantile(double p) const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Uniform(lo, hi) on a bounded interval; used for jitter terms.
class UniformDistribution : public Distribution {
 public:
  /// Requires lo < hi.
  UniformDistribution(double lo, double hi);

  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Mean() const override;
  double Quantile(double p) const override;

 private:
  double lo_;
  double hi_;
};

/// Convex mixture of component distributions. Sampling picks a component
/// by weight, then samples it; Cdf/Pdf are weighted sums. Lifetime
/// populations in the simulator are mixtures (e.g. 60% churn Weibull +
/// 40% long-lived lognormal).
class MixtureDistribution : public Distribution {
 public:
  /// Builds a mixture; weights need not be normalized but must be
  /// non-negative with a positive sum, and sizes must match.
  static Result<MixtureDistribution> Make(
      std::vector<std::shared_ptr<const Distribution>> components,
      std::vector<double> weights);

  double Sample(Rng& rng) const override;
  double Cdf(double x) const override;
  double Pdf(double x) const override;
  double Mean() const override;
  /// Quantile by bisection on the mixture CDF.
  double Quantile(double p) const override;

  size_t num_components() const { return components_.size(); }
  const std::vector<double>& weights() const { return weights_; }

 private:
  MixtureDistribution(
      std::vector<std::shared_ptr<const Distribution>> components,
      std::vector<double> weights);

  std::vector<std::shared_ptr<const Distribution>> components_;
  std::vector<double> weights_;      // normalized
  std::vector<double> cum_weights_;  // prefix sums for sampling
};

/// One-sample Kolmogorov-Smirnov statistic of `sample` against `dist`:
/// sup_x |F_empirical(x) - F(x)|. Used by tests to property-check
/// samplers against their analytic CDFs.
double KolmogorovSmirnovStatistic(std::vector<double> sample,
                                  const Distribution& dist);

}  // namespace cloudsurv::stats

#endif  // CLOUDSURV_STATS_DISTRIBUTIONS_H_
