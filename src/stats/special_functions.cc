#include "stats/special_functions.h"

#include <cmath>
#include <limits>

namespace cloudsurv::stats {

namespace {

constexpr double kEpsilon = 1e-15;
constexpr int kMaxIterations = 500;

// Lanczos coefficients (g = 7, n = 9), standard values.
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
    771.32342877765313,   -176.61502916214059, 12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

// Series expansion for P(a, x), converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x), converges quickly for x >= a + 1.
// Modified Lentz's method.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for the incomplete beta (modified Lentz).
double BetaContinuedFraction(double x, double a, double b) {
  const double kTiny = 1e-300;
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  if (x <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x < 0.5) {
    // Reflection formula: Gamma(x) Gamma(1-x) = pi / sin(pi x).
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  double z = x - 1.0;
  double acc = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    acc += kLanczos[i] / (z + i);
  }
  double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(acc);
}

double RegularizedGammaP(double a, double x) {
  if (a <= 0.0 || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (a <= 0.0 || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double Erf(double x) {
  if (x >= 0.0) return RegularizedGammaP(0.5, x * x);
  return -RegularizedGammaP(0.5, x * x);
}

double Erfc(double x) {
  if (x >= 0.0) return RegularizedGammaQ(0.5, x * x);
  return 1.0 + RegularizedGammaP(0.5, x * x);
}

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double RegularizedBeta(double x, double a, double b) {
  if (x < 0.0 || x > 1.0 || a <= 0.0 || b <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  double ln_front = a * std::log(x) + b * std::log(1.0 - x) - LogBeta(a, b);
  double front = std::exp(ln_front);
  // Use the symmetry relation to pick the rapidly converging branch.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

double ChiSquaredSurvival(double x, double df) {
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double ChiSquaredCdf(double x, double df) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

double NormalCdf(double x) { return 0.5 * Erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace cloudsurv::stats
