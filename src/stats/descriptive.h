#ifndef CLOUDSURV_STATS_DESCRIPTIVE_H_
#define CLOUDSURV_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

namespace cloudsurv::stats {

/// Aggregate descriptive statistics of a numeric sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Sample variance (n - 1 denominator); 0 if n < 2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes count/mean/sample-variance/stddev/min/max/sum in one pass
/// (Welford's algorithm; numerically stable). Empty input yields an
/// all-zero summary.
Summary Summarize(const std::vector<double>& values);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Sample variance (n - 1 denominator); 0 if fewer than two values.
double SampleVariance(const std::vector<double>& values);

/// Sample standard deviation.
double SampleStdDev(const std::vector<double>& values);

/// Linear-interpolation quantile (type 7, the numpy/R default).
/// `q` in [0, 1]. Returns 0 for empty input. Copies and partially sorts.
double Quantile(std::vector<double> values, double q);

/// Median = Quantile(values, 0.5).
double Median(std::vector<double> values);

/// Pearson correlation coefficient; 0 when either side is constant or the
/// inputs are empty/mismatched.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Streaming accumulator for mean/variance/min/max over a sequence of
/// values without storing them (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n - 1); 0 if fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace cloudsurv::stats

#endif  // CLOUDSURV_STATS_DESCRIPTIVE_H_
