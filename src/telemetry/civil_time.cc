#include "telemetry/civil_time.h"

#include <algorithm>
#include <cstdio>

namespace cloudsurv::telemetry {

int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant's days_from_civil.
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;                                    // [0, 365]
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;        // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  // Howard Hinnant's civil_from_days.
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;     // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Timestamp MakeTimestamp(int year, int month, int day, int hour, int minute,
                        int second) {
  return DaysFromCivil(year, month, day) * kSecondsPerDay +
         hour * kSecondsPerHour + minute * kSecondsPerMinute + second;
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

CivilDateTime ToCivil(Timestamp ts, int utc_offset_minutes) {
  const int64_t local = ts + static_cast<int64_t>(utc_offset_minutes) * 60;
  int64_t days = local / kSecondsPerDay;
  int64_t secs = local % kSecondsPerDay;
  if (secs < 0) {
    secs += kSecondsPerDay;
    days -= 1;
  }
  CivilDateTime out;
  CivilFromDays(days, &out.year, &out.month, &out.day);
  out.hour = static_cast<int>(secs / kSecondsPerHour);
  out.minute = static_cast<int>((secs % kSecondsPerHour) / kSecondsPerMinute);
  out.second = static_cast<int>(secs % kSecondsPerMinute);
  // 1970-01-01 (day 0) was a Thursday. Map to 1=Monday..7=Sunday.
  int64_t dow = (days + 3) % 7;  // 0 = Monday
  if (dow < 0) dow += 7;
  out.day_of_week = static_cast<int>(dow) + 1;
  out.day_of_year =
      static_cast<int>(days - DaysFromCivil(out.year, 1, 1)) + 1;
  out.week_of_year = std::min(52, (out.day_of_year - 1) / 7 + 1);
  return out;
}

std::string FormatIso8601(Timestamp ts) {
  const CivilDateTime c = ToCivil(ts, 0);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return std::string(buf);
}

Result<Timestamp> ParseIso8601(const std::string& text) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  int matched =
      std::sscanf(text.c_str(), "%d-%d-%dT%d:%d:%d", &y, &mo, &d, &h, &mi, &s);
  if (matched != 6) {
    matched = std::sscanf(text.c_str(), "%d-%d-%d", &y, &mo, &d);
    if (matched != 3) {
      return Status::InvalidArgument("unparseable timestamp: " + text);
    }
    h = mi = s = 0;
  }
  if (mo < 1 || mo > 12 || d < 1 || d > DaysInMonth(y, mo) || h < 0 ||
      h > 23 || mi < 0 || mi > 59 || s < 0 || s > 59) {
    return Status::InvalidArgument("timestamp fields out of range: " + text);
  }
  return MakeTimestamp(y, mo, d, h, mi, s);
}

void HolidayCalendar::AddHoliday(int year, int month, int day) {
  const int64_t v = DaysFromCivil(year, month, day);
  const auto it = std::lower_bound(days_.begin(), days_.end(), v);
  if (it == days_.end() || *it != v) days_.insert(it, v);
}

bool HolidayCalendar::IsHoliday(Timestamp ts, int utc_offset_minutes) const {
  const CivilDateTime c = ToCivil(ts, utc_offset_minutes);
  return IsHolidayDate(c.year, c.month, c.day);
}

bool HolidayCalendar::IsHolidayDate(int year, int month, int day) const {
  const int64_t v = DaysFromCivil(year, month, day);
  return std::binary_search(days_.begin(), days_.end(), v);
}

}  // namespace cloudsurv::telemetry
