#ifndef CLOUDSURV_TELEMETRY_COLUMNAR_H_
#define CLOUDSURV_TELEMETRY_COLUMNAR_H_

// Columnar building blocks for TelemetryStore: an interning string
// pool, open-addressing id maps, paged chain pools for live per-record
// lists, and sealed immutable event segments. See docs/telemetry.md for
// the layout and the memory model derived from it.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "telemetry/civil_time.h"
#include "telemetry/types.h"

namespace cloudsurv::obs {
class Counter;
class Gauge;
}  // namespace cloudsurv::obs

namespace cloudsurv::telemetry {

/// One recorded SLO transition of a database.
struct SloChange {
  Timestamp timestamp = 0;
  int old_slo_index = 0;
  int new_slo_index = 0;
};

/// One recorded data-size sample of a database.
struct SizeObservation {
  Timestamp timestamp = 0;
  double size_mb = 0.0;
};

namespace columnar {

/// Process-wide telemetry metrics, resolved once (see
/// docs/observability.md).
struct Metrics {
  obs::Counter* segments_total = nullptr;
  obs::Counter* interned_strings_total = nullptr;
  obs::Gauge* resident_bytes = nullptr;
};
const Metrics& GlobalMetrics();

/// Append-only interning pool. Ids are dense u32s in first-intern
/// order; character data lives in chunked storage so views stay valid
/// for the lifetime of the pool (and across moves of its owner).
class StringPool {
 public:
  StringPool() = default;

  /// Returns the id of `s`, interning it on first sight.
  uint32_t Intern(std::string_view s);

  std::string_view View(uint32_t id) const {
    const Span& sp = spans_[id];
    return std::string_view(chunks_[sp.chunk].get() + sp.offset, sp.length);
  }

  size_t size() const { return spans_.size(); }
  size_t ApproxBytes() const;

 private:
  static constexpr size_t kChunkBytes = 1 << 18;

  struct Span {
    uint32_t chunk = 0;
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  void Rehash(size_t new_buckets);

  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_used_ = kChunkBytes;  ///< forces first-chunk allocation
  std::vector<Span> spans_;
  /// Open-addressing table of interned ids; UINT32_MAX = empty.
  std::vector<uint32_t> buckets_;
};

/// Open-addressing map from a 64-bit id to a dense u32 row. `empty_key`
/// must never be inserted (kInvalidId — rejected by Append upstream).
class IdMap {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  void Insert(uint64_t key, uint32_t value);
  uint32_t Find(uint64_t key) const;
  size_t size() const { return size_; }
  size_t ApproxBytes() const { return slots_.capacity() * sizeof(Slot); }
  void Clear() {
    slots_.clear();
    slots_.shrink_to_fit();
    size_ = 0;
  }

 private:
  struct Slot {
    uint64_t key = kInvalidId;
    uint32_t value = 0;
  };
  void Grow();

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

/// Paged chain pools backing the live (pre-Finalize) per-record SLO
/// change and size sample lists and the per-subscription database
/// lists. Pages are addressed by index so the backing vectors may grow;
/// UINT32_MAX terminates a chain.
inline constexpr uint32_t kNilPage = UINT32_MAX;

struct SloPage {
  static constexpr int kN = 8;
  uint32_t next = kNilPage;
  uint16_t count = 0;
  uint32_t dt[kN];  ///< seconds since the record's created_at
  uint16_t old_slo[kN];
  uint16_t new_slo[kN];
};

struct SizePage {
  static constexpr int kN = 8;
  uint32_t next = kNilPage;
  uint16_t count = 0;
  uint32_t dt[kN];
  double mb[kN];
};

struct DbIdPage {
  static constexpr int kN = 8;
  uint32_t next = kNilPage;
  uint16_t count = 0;
  uint64_t ids[kN];
};

/// Chronological SLO changes of one database: a contiguous slice of the
/// finalized CSR columns, or a page chain while the store is live.
/// Elements are materialized on access (absolute timestamps are
/// reconstructed from the record's creation time).
class SloChangeSpan {
 public:
  SloChangeSpan() = default;
  /// Contiguous (finalized) mode.
  SloChangeSpan(Timestamp base, const uint32_t* dt, const uint16_t* old_slo,
                const uint16_t* new_slo, size_t n)
      : base_(base), dt_(dt), old_(old_slo), new_(new_slo), count_(n) {}
  /// Chain (live) mode.
  SloChangeSpan(Timestamp base, const std::vector<SloPage>* pool,
                uint32_t head, size_t n)
      : base_(base), pool_(pool), head_(head), count_(n) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  SloChange operator[](size_t i) const {
    if (pool_ == nullptr) {
      return SloChange{base_ + dt_[i], old_[i], new_[i]};
    }
    uint32_t page = head_;
    while (i >= (*pool_)[page].count) {
      i -= (*pool_)[page].count;
      page = (*pool_)[page].next;
    }
    const SloPage& p = (*pool_)[page];
    return SloChange{base_ + p.dt[i], p.old_slo[i], p.new_slo[i]};
  }

  SloChange front() const { return (*this)[0]; }
  SloChange back() const { return (*this)[count_ - 1]; }

  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = SloChange;
    using difference_type = std::ptrdiff_t;
    using pointer = const SloChange*;
    using reference = SloChange;

    Iterator(const SloChangeSpan* span, size_t i, uint32_t page,
             uint16_t in_page)
        : span_(span), i_(i), page_(page), in_page_(in_page) {}

    SloChange operator*() const {
      if (span_->pool_ == nullptr) {
        return SloChange{span_->base_ + span_->dt_[i_], span_->old_[i_],
                         span_->new_[i_]};
      }
      const SloPage& p = (*span_->pool_)[page_];
      return SloChange{span_->base_ + p.dt[in_page_], p.old_slo[in_page_],
                       p.new_slo[in_page_]};
    }
    Iterator& operator++() {
      ++i_;
      if (span_->pool_ != nullptr &&
          ++in_page_ == (*span_->pool_)[page_].count) {
        page_ = (*span_->pool_)[page_].next;
        in_page_ = 0;
      }
      return *this;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    const SloChangeSpan* span_;
    size_t i_;
    uint32_t page_;
    uint16_t in_page_;
  };

  Iterator begin() const { return Iterator(this, 0, head_, 0); }
  Iterator end() const { return Iterator(this, count_, kNilPage, 0); }

 private:
  friend class Iterator;
  Timestamp base_ = 0;
  const uint32_t* dt_ = nullptr;
  const uint16_t* old_ = nullptr;
  const uint16_t* new_ = nullptr;
  const std::vector<SloPage>* pool_ = nullptr;
  uint32_t head_ = kNilPage;
  size_t count_ = 0;
};

/// Chronological size samples of one database (same two modes as
/// SloChangeSpan).
class SizeSampleSpan {
 public:
  SizeSampleSpan() = default;
  SizeSampleSpan(Timestamp base, const uint32_t* dt, const double* mb,
                 size_t n)
      : base_(base), dt_(dt), mb_(mb), count_(n) {}
  SizeSampleSpan(Timestamp base, const std::vector<SizePage>* pool,
                 uint32_t head, size_t n)
      : base_(base), pool_(pool), head_(head), count_(n) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  SizeObservation operator[](size_t i) const {
    if (pool_ == nullptr) {
      return SizeObservation{base_ + dt_[i], mb_[i]};
    }
    uint32_t page = head_;
    while (i >= (*pool_)[page].count) {
      i -= (*pool_)[page].count;
      page = (*pool_)[page].next;
    }
    const SizePage& p = (*pool_)[page];
    return SizeObservation{base_ + p.dt[i], p.mb[i]};
  }

  SizeObservation front() const { return (*this)[0]; }
  SizeObservation back() const { return (*this)[count_ - 1]; }

  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = SizeObservation;
    using difference_type = std::ptrdiff_t;
    using pointer = const SizeObservation*;
    using reference = SizeObservation;

    Iterator(const SizeSampleSpan* span, size_t i, uint32_t page,
             uint16_t in_page)
        : span_(span), i_(i), page_(page), in_page_(in_page) {}

    SizeObservation operator*() const {
      if (span_->pool_ == nullptr) {
        return SizeObservation{span_->base_ + span_->dt_[i_], span_->mb_[i_]};
      }
      const SizePage& p = (*span_->pool_)[page_];
      return SizeObservation{span_->base_ + p.dt[in_page_], p.mb[in_page_]};
    }
    Iterator& operator++() {
      ++i_;
      if (span_->pool_ != nullptr &&
          ++in_page_ == (*span_->pool_)[page_].count) {
        page_ = (*span_->pool_)[page_].next;
        in_page_ = 0;
      }
      return *this;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    const SizeSampleSpan* span_;
    size_t i_;
    uint32_t page_;
    uint16_t in_page_;
  };

  Iterator begin() const { return Iterator(this, 0, head_, 0); }
  Iterator end() const { return Iterator(this, count_, kNilPage, 0); }

 private:
  friend class Iterator;
  Timestamp base_ = 0;
  const uint32_t* dt_ = nullptr;
  const double* mb_ = nullptr;
  const std::vector<SizePage>* pool_ = nullptr;
  uint32_t head_ = kNilPage;
  size_t count_ = 0;
};

/// Database ids of one subscription in creation order: a contiguous
/// slice of the finalized CSR, or a page chain while live.
class SubscriptionDatabases {
 public:
  SubscriptionDatabases() = default;
  SubscriptionDatabases(const uint64_t* ids, size_t n)
      : ids_(ids), count_(n) {}
  SubscriptionDatabases(const std::vector<DbIdPage>* pool, uint32_t head,
                        size_t n)
      : pool_(pool), head_(head), count_(n) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  DatabaseId operator[](size_t i) const {
    if (pool_ == nullptr) return ids_[i];
    uint32_t page = head_;
    while (i >= (*pool_)[page].count) {
      i -= (*pool_)[page].count;
      page = (*pool_)[page].next;
    }
    return (*pool_)[page].ids[i];
  }

  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = DatabaseId;
    using difference_type = std::ptrdiff_t;
    using pointer = const DatabaseId*;
    using reference = DatabaseId;

    Iterator(const SubscriptionDatabases* span, size_t i, uint32_t page,
             uint16_t in_page)
        : span_(span), i_(i), page_(page), in_page_(in_page) {}

    DatabaseId operator*() const {
      if (span_->pool_ == nullptr) return span_->ids_[i_];
      return (*span_->pool_)[page_].ids[in_page_];
    }
    Iterator& operator++() {
      ++i_;
      if (span_->pool_ != nullptr &&
          ++in_page_ == (*span_->pool_)[page_].count) {
        page_ = (*span_->pool_)[page_].next;
        in_page_ = 0;
      }
      return *this;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    const SubscriptionDatabases* span_;
    size_t i_;
    uint32_t page_;
    uint16_t in_page_;
  };

  Iterator begin() const { return Iterator(this, 0, head_, 0); }
  Iterator end() const { return Iterator(this, count_, kNilPage, 0); }

 private:
  friend class Iterator;
  const uint64_t* ids_ = nullptr;
  const std::vector<DbIdPage>* pool_ = nullptr;
  uint32_t head_ = kNilPage;
  size_t count_ = 0;
};

/// One sealed, immutable time partition of the event log. Event rows
/// carry a record row reference instead of raw database/subscription
/// ids (both are recovered from the record columns), a u32 offset from
/// `base_ts` when the partition's span allows it, and a per-kind
/// payload index. Creation events carry no payload here — the record
/// row *is* the creation payload.
struct Segment {
  int64_t base_ts = 0;
  int64_t min_ts = 0;
  int64_t max_ts = 0;
  uint32_t n = 0;
  std::unique_ptr<uint32_t[]> dt;       ///< null iff wide_ts is set
  std::unique_ptr<int64_t[]> wide_ts;   ///< fallback for >u32 spans
  std::unique_ptr<uint32_t[]> row;
  std::unique_ptr<uint8_t[]> kind;
  std::unique_ptr<uint32_t[]> pix;
  uint32_t n_slo = 0;
  std::unique_ptr<uint16_t[]> slo_old;
  std::unique_ptr<uint16_t[]> slo_new;
  uint32_t n_size = 0;
  std::unique_ptr<double[]> size_mb;

  int64_t TsAt(uint32_t i) const {
    return wide_ts ? wide_ts[i] : base_ts + static_cast<int64_t>(dt[i]);
  }
  size_t ApproxBytes() const;
};

}  // namespace columnar
}  // namespace cloudsurv::telemetry

#endif  // CLOUDSURV_TELEMETRY_COLUMNAR_H_
