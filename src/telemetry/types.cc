#include "telemetry/types.h"

namespace cloudsurv::telemetry {

const char* EditionToString(Edition edition) {
  switch (edition) {
    case Edition::kBasic:
      return "Basic";
    case Edition::kStandard:
      return "Standard";
    case Edition::kPremium:
      return "Premium";
  }
  return "Unknown";
}

bool EditionFromString(const std::string& name, Edition* out) {
  if (name == "Basic") {
    *out = Edition::kBasic;
    return true;
  }
  if (name == "Standard") {
    *out = Edition::kStandard;
    return true;
  }
  if (name == "Premium") {
    *out = Edition::kPremium;
    return true;
  }
  return false;
}

const std::vector<ServiceLevelObjective>& SloLadder() {
  static const auto* kLadder = new std::vector<ServiceLevelObjective>{
      {"Basic", Edition::kBasic, 5, 2 * 1024.0},
      {"S0", Edition::kStandard, 10, 250 * 1024.0},
      {"S1", Edition::kStandard, 20, 250 * 1024.0},
      {"S2", Edition::kStandard, 50, 250 * 1024.0},
      {"S3", Edition::kStandard, 100, 250 * 1024.0},
      {"P1", Edition::kPremium, 125, 500 * 1024.0},
      {"P2", Edition::kPremium, 250, 500 * 1024.0},
      {"P4", Edition::kPremium, 500, 500 * 1024.0},
      {"P6", Edition::kPremium, 1000, 500 * 1024.0},
      {"P11", Edition::kPremium, 1750, 1024 * 1024.0},
      {"P15", Edition::kPremium, 4000, 1024 * 1024.0},
  };
  return *kLadder;
}

int NumSlos() { return static_cast<int>(SloLadder().size()); }

int SloIndexByName(const std::string& name) {
  const auto& ladder = SloLadder();
  for (size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int CheapestSloOfEdition(Edition edition) {
  const auto& ladder = SloLadder();
  for (size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i].edition == edition) return static_cast<int>(i);
  }
  return -1;
}

int MostExpensiveSloOfEdition(Edition edition) {
  const auto& ladder = SloLadder();
  int best = -1;
  for (size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i].edition == edition) best = static_cast<int>(i);
  }
  return best;
}

std::vector<int> SlosOfEdition(Edition edition) {
  std::vector<int> out;
  const auto& ladder = SloLadder();
  for (size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i].edition == edition) out.push_back(static_cast<int>(i));
  }
  return out;
}

const char* SubscriptionTypeToString(SubscriptionType type) {
  switch (type) {
    case SubscriptionType::kFreeTrial:
      return "FreeTrial";
    case SubscriptionType::kPayAsYouGo:
      return "PayAsYouGo";
    case SubscriptionType::kEnterpriseAgreement:
      return "EnterpriseAgreement";
    case SubscriptionType::kDevTestBenefit:
      return "DevTestBenefit";
    case SubscriptionType::kCloudServiceProvider:
      return "CloudServiceProvider";
    case SubscriptionType::kStudent:
      return "Student";
  }
  return "Unknown";
}

}  // namespace cloudsurv::telemetry
