#include "telemetry/events.h"

namespace cloudsurv::telemetry {

const char* EventKindToString(EventKind kind) {
  switch (kind) {
    case EventKind::kDatabaseCreated:
      return "DatabaseCreated";
    case EventKind::kSloChanged:
      return "SloChanged";
    case EventKind::kSizeSample:
      return "SizeSample";
    case EventKind::kDatabaseDropped:
      return "DatabaseDropped";
  }
  return "Unknown";
}

Event MakeCreatedEvent(Timestamp ts, DatabaseId db, SubscriptionId sub,
                       DatabaseCreatedPayload payload) {
  Event e;
  e.timestamp = ts;
  e.database_id = db;
  e.subscription_id = sub;
  e.payload = std::move(payload);
  return e;
}

Event MakeSloChangedEvent(Timestamp ts, DatabaseId db, SubscriptionId sub,
                          int old_slo, int new_slo) {
  Event e;
  e.timestamp = ts;
  e.database_id = db;
  e.subscription_id = sub;
  e.payload = SloChangedPayload{old_slo, new_slo};
  return e;
}

Event MakeSizeSampleEvent(Timestamp ts, DatabaseId db, SubscriptionId sub,
                          double size_mb) {
  Event e;
  e.timestamp = ts;
  e.database_id = db;
  e.subscription_id = sub;
  e.payload = SizeSamplePayload{size_mb};
  return e;
}

Event MakeDroppedEvent(Timestamp ts, DatabaseId db, SubscriptionId sub) {
  Event e;
  e.timestamp = ts;
  e.database_id = db;
  e.subscription_id = sub;
  e.payload = DatabaseDroppedPayload{};
  return e;
}

}  // namespace cloudsurv::telemetry
