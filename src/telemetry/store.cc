#include "telemetry/store.h"

#include <algorithm>
#include <iterator>
#include <numeric>
#include <sstream>
#include <tuple>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace cloudsurv::telemetry {

namespace internal {

namespace {

constexpr int64_t kNoDrop = std::numeric_limits<int64_t>::min();

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  return q - (a % b != 0 && (a < 0) != (b < 0));
}

/// push_back that counts capacity growths (the "mid-segment
/// reallocation" Reserve() exists to avoid).
template <typename T>
void PushCounted(std::vector<T>& v, T value, uint64_t* reallocs) {
  if (v.size() == v.capacity()) ++*reallocs;
  v.push_back(value);
}

template <typename T>
size_t CapBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

template <typename T>
std::unique_ptr<T[]> PackArray(const std::vector<T>& v) {
  auto out = std::make_unique<T[]>(v.size());
  std::copy(v.begin(), v.end(), out.get());
  return out;
}

}  // namespace

/// All columnar state of one store, held behind a unique_ptr so views
/// (EventSequence, spans) stay valid across moves of the owning store.
struct StoreRep {
  StoreRep(int64_t partition_seconds_in, Timestamp window_start_in)
      : partition_seconds(partition_seconds_in < 1 ? 1 : partition_seconds_in),
        window_start(window_start_in) {}
  ~StoreRep() {
    columnar::GlobalMetrics().resident_bytes->Add(
        -static_cast<double>(reported_bytes));
  }
  StoreRep(const StoreRep&) = delete;
  StoreRep& operator=(const StoreRep&) = delete;

  int64_t partition_seconds;
  Timestamp window_start;

  bool finalized = false;
  bool ordered = true;
  bool poisoned = false;
  Status deferred_error = Status::OK();
  uint64_t total_events = 0;

  bool have_last = false;
  int64_t last_ts = 0;
  uint64_t last_db = 0;
  uint8_t last_kind = 0;
  int64_t active_partition = 0;

  columnar::StringPool pool;
  columnar::IdMap db_rows;   ///< database id -> record row (live ingest)
  columnar::IdMap sub_rows;  ///< subscription id -> index into `subs`

  std::vector<columnar::Segment> segments;
  std::vector<uint64_t> seg_cum;  ///< cumulative event count per segment

  /// The active (unsealed) segment: wide columns so any append order
  /// and any validation outcome can be represented before sealing.
  struct Active {
    std::vector<int64_t> ts;
    std::vector<uint64_t> db;
    std::vector<uint64_t> sub;
    std::vector<uint32_t> row;  ///< record row; UINT32_MAX if unresolved
    std::vector<uint8_t> kind;
    std::vector<uint32_t> pix;
    std::vector<uint16_t> slo_old, slo_new;
    std::vector<double> size_mb;
    std::vector<uint64_t> c_server;
    std::vector<uint32_t> c_sname, c_dname;
    std::vector<uint16_t> c_slo;
    std::vector<uint8_t> c_stype;

    void Clear() {
      ts.clear();
      db.clear();
      sub.clear();
      row.clear();
      kind.clear();
      pix.clear();
      slo_old.clear();
      slo_new.clear();
      size_mb.clear();
      c_server.clear();
      c_sname.clear();
      c_dname.clear();
      c_slo.clear();
      c_stype.clear();
    }
    size_t Bytes() const {
      return CapBytes(ts) + CapBytes(db) + CapBytes(sub) + CapBytes(row) +
             CapBytes(kind) + CapBytes(pix) + CapBytes(slo_old) +
             CapBytes(slo_new) + CapBytes(size_mb) + CapBytes(c_server) +
             CapBytes(c_sname) + CapBytes(c_dname) + CapBytes(c_slo) +
             CapBytes(c_stype);
    }
  } active;

  struct Records {
    std::vector<uint64_t> id, sub, server;
    std::vector<uint32_t> sname, dname;
    std::vector<uint8_t> stype;
    std::vector<uint16_t> slo0;
    std::vector<int64_t> created, dropped;
    /// Live page-chain heads/tails/counts (freed at Finalize).
    std::vector<uint32_t> slo_head, slo_tail, slo_cnt;
    std::vector<uint32_t> size_head, size_tail, size_cnt;
    /// Finalized CSR columns (empty while live).
    std::vector<uint32_t> slo_begin, size_begin;  ///< size n+1
    std::vector<uint32_t> csr_slo_dt;
    std::vector<uint16_t> csr_slo_old, csr_slo_new;
    std::vector<uint32_t> csr_size_dt;
    std::vector<double> csr_size_mb;

    size_t Bytes() const {
      return CapBytes(id) + CapBytes(sub) + CapBytes(server) +
             CapBytes(sname) + CapBytes(dname) + CapBytes(stype) +
             CapBytes(slo0) + CapBytes(created) + CapBytes(dropped) +
             CapBytes(slo_head) + CapBytes(slo_tail) + CapBytes(slo_cnt) +
             CapBytes(size_head) + CapBytes(size_tail) + CapBytes(size_cnt) +
             CapBytes(slo_begin) + CapBytes(size_begin) +
             CapBytes(csr_slo_dt) + CapBytes(csr_slo_old) +
             CapBytes(csr_slo_new) + CapBytes(csr_size_dt) +
             CapBytes(csr_size_mb);
    }
  } rec;

  std::vector<columnar::SloPage> slo_pool;
  std::vector<columnar::SizePage> size_pool;
  std::vector<columnar::DbIdPage> db_pool;

  struct SubList {
    uint64_t sub = 0;
    uint32_t head = columnar::kNilPage;
    uint32_t tail = columnar::kNilPage;
    uint32_t count = 0;
  };
  std::vector<SubList> subs;  ///< first-seen order while live

  /// Finalized subscription CSR: keys sorted, `sub_dbs` in creation
  /// order per key.
  std::vector<uint64_t> sub_keys, sub_begin, sub_dbs;
  /// Record rows sorted by database id (finalized iteration order).
  std::vector<uint32_t> order;

  uint64_t column_reallocs = 0;
  size_t reported_bytes = 0;

  bool incremental() const { return ordered && !poisoned; }
  bool readable() const { return finalized || incremental(); }

  void Poison(Status s) {
    if (!poisoned) {
      poisoned = true;
      deferred_error = std::move(s);
    }
  }

  void AppendSloChain(uint32_t row, uint32_t dt, uint16_t old_slo,
                      uint16_t new_slo) {
    uint32_t tail = rec.slo_tail[row];
    if (tail == columnar::kNilPage ||
        slo_pool[tail].count == columnar::SloPage::kN) {
      const uint32_t np = static_cast<uint32_t>(slo_pool.size());
      slo_pool.emplace_back();
      if (tail == columnar::kNilPage) {
        rec.slo_head[row] = np;
      } else {
        slo_pool[tail].next = np;
      }
      rec.slo_tail[row] = tail = np;
    }
    columnar::SloPage& p = slo_pool[tail];
    p.dt[p.count] = dt;
    p.old_slo[p.count] = old_slo;
    p.new_slo[p.count] = new_slo;
    ++p.count;
    ++rec.slo_cnt[row];
  }

  void AppendSizeChain(uint32_t row, uint32_t dt, double mb) {
    uint32_t tail = rec.size_tail[row];
    if (tail == columnar::kNilPage ||
        size_pool[tail].count == columnar::SizePage::kN) {
      const uint32_t np = static_cast<uint32_t>(size_pool.size());
      size_pool.emplace_back();
      if (tail == columnar::kNilPage) {
        rec.size_head[row] = np;
      } else {
        size_pool[tail].next = np;
      }
      rec.size_tail[row] = tail = np;
    }
    columnar::SizePage& p = size_pool[tail];
    p.dt[p.count] = dt;
    p.mb[p.count] = mb;
    ++p.count;
    ++rec.size_cnt[row];
  }

  void AppendDbChain(SubList* list, uint64_t db) {
    uint32_t tail = list->tail;
    if (tail == columnar::kNilPage ||
        db_pool[tail].count == columnar::DbIdPage::kN) {
      const uint32_t np = static_cast<uint32_t>(db_pool.size());
      db_pool.emplace_back();
      if (tail == columnar::kNilPage) {
        list->head = np;
      } else {
        db_pool[tail].next = np;
      }
      list->tail = tail = np;
    }
    columnar::DbIdPage& p = db_pool[tail];
    p.ids[p.count] = db;
    ++p.count;
    ++list->count;
  }

  void Seal() {
    const size_t n = active.ts.size();
    if (n == 0) return;
    columnar::Segment s;
    s.n = static_cast<uint32_t>(n);
    s.min_ts = active.ts.front();
    s.max_ts = active.ts.back();
    s.base_ts = s.min_ts;
    if (s.max_ts - s.min_ts <=
        static_cast<int64_t>(std::numeric_limits<uint32_t>::max())) {
      s.dt = std::make_unique<uint32_t[]>(n);
      for (size_t i = 0; i < n; ++i) {
        s.dt[i] = static_cast<uint32_t>(active.ts[i] - s.base_ts);
      }
    } else {
      s.wide_ts = PackArray(active.ts);
    }
    s.row = PackArray(active.row);
    s.kind = PackArray(active.kind);
    s.pix = PackArray(active.pix);
    s.n_slo = static_cast<uint32_t>(active.slo_old.size());
    s.slo_old = PackArray(active.slo_old);
    s.slo_new = PackArray(active.slo_new);
    s.n_size = static_cast<uint32_t>(active.size_mb.size());
    s.size_mb = PackArray(active.size_mb);
    seg_cum.push_back((seg_cum.empty() ? 0 : seg_cum.back()) + n);
    segments.push_back(std::move(s));
    active.Clear();
    columnar::GlobalMetrics().segments_total->Increment();
    SyncGauge();
  }

  Event DecodeSealed(size_t si, size_t j) const {
    const columnar::Segment& s = segments[si];
    const Timestamp ts = s.TsAt(static_cast<uint32_t>(j));
    const uint32_t row = s.row[j];
    const DatabaseId db = rec.id[row];
    const SubscriptionId sub = rec.sub[row];
    switch (static_cast<EventKind>(s.kind[j])) {
      case EventKind::kDatabaseCreated: {
        DatabaseCreatedPayload p;
        p.server_id = rec.server[row];
        p.server_name = std::string(pool.View(rec.sname[row]));
        p.database_name = std::string(pool.View(rec.dname[row]));
        p.slo_index = rec.slo0[row];
        p.subscription_type = static_cast<SubscriptionType>(rec.stype[row]);
        return MakeCreatedEvent(ts, db, sub, std::move(p));
      }
      case EventKind::kSloChanged:
        return MakeSloChangedEvent(ts, db, sub, s.slo_old[s.pix[j]],
                                   s.slo_new[s.pix[j]]);
      case EventKind::kSizeSample:
        return MakeSizeSampleEvent(ts, db, sub, s.size_mb[s.pix[j]]);
      case EventKind::kDatabaseDropped:
        return MakeDroppedEvent(ts, db, sub);
    }
    return Event();
  }

  Event DecodeActive(size_t j) const {
    const Timestamp ts = active.ts[j];
    const DatabaseId db = active.db[j];
    const SubscriptionId sub = active.sub[j];
    switch (static_cast<EventKind>(active.kind[j])) {
      case EventKind::kDatabaseCreated: {
        const uint32_t pix = active.pix[j];
        DatabaseCreatedPayload p;
        p.server_id = active.c_server[pix];
        p.server_name = std::string(pool.View(active.c_sname[pix]));
        p.database_name = std::string(pool.View(active.c_dname[pix]));
        p.slo_index = active.c_slo[pix];
        p.subscription_type =
            static_cast<SubscriptionType>(active.c_stype[pix]);
        return MakeCreatedEvent(ts, db, sub, std::move(p));
      }
      case EventKind::kSloChanged:
        return MakeSloChangedEvent(ts, db, sub, active.slo_old[active.pix[j]],
                                   active.slo_new[active.pix[j]]);
      case EventKind::kSizeSample:
        return MakeSizeSampleEvent(ts, db, sub, active.size_mb[active.pix[j]]);
      case EventKind::kDatabaseDropped:
        return MakeDroppedEvent(ts, db, sub);
    }
    return Event();
  }

  Event EventAt(size_t i) const {
    const size_t sealed = seg_cum.empty() ? 0 : seg_cum.back();
    if (i >= sealed) return DecodeActive(i - sealed);
    const size_t si =
        std::upper_bound(seg_cum.begin(), seg_cum.end(), i) - seg_cum.begin();
    const size_t base = si == 0 ? 0 : seg_cum[si - 1];
    return DecodeSealed(si, i - base);
  }

  DatabaseRecord RecordAt(uint32_t row) const {
    DatabaseRecord out;
    out.id = rec.id[row];
    out.subscription_id = rec.sub[row];
    out.server_id = rec.server[row];
    out.server_name = pool.View(rec.sname[row]);
    out.database_name = pool.View(rec.dname[row]);
    out.subscription_type = static_cast<SubscriptionType>(rec.stype[row]);
    out.created_at = rec.created[row];
    if (rec.dropped[row] != kNoDrop) out.dropped_at = rec.dropped[row];
    out.initial_slo_index = rec.slo0[row];
    const Timestamp base = rec.created[row];
    if (finalized) {
      const uint32_t sb = rec.slo_begin[row];
      out.slo_changes = columnar::SloChangeSpan(
          base, rec.csr_slo_dt.data() + sb, rec.csr_slo_old.data() + sb,
          rec.csr_slo_new.data() + sb, rec.slo_begin[row + 1] - sb);
      const uint32_t zb = rec.size_begin[row];
      out.size_samples = columnar::SizeSampleSpan(
          base, rec.csr_size_dt.data() + zb, rec.csr_size_mb.data() + zb,
          rec.size_begin[row + 1] - zb);
    } else {
      out.slo_changes = columnar::SloChangeSpan(base, &slo_pool,
                                                rec.slo_head[row],
                                                rec.slo_cnt[row]);
      out.size_samples = columnar::SizeSampleSpan(base, &size_pool,
                                                  rec.size_head[row],
                                                  rec.size_cnt[row]);
    }
    return out;
  }

  void ResetEventState() {
    segments.clear();
    seg_cum.clear();
    active = Active();
    rec = Records();
    slo_pool.clear();
    slo_pool.shrink_to_fit();
    size_pool.clear();
    size_pool.shrink_to_fit();
    db_pool.clear();
    db_pool.shrink_to_fit();
    subs.clear();
    db_rows.Clear();
    sub_rows.Clear();
    order.clear();
    ordered = true;
    poisoned = false;
    deferred_error = Status::OK();
    total_events = 0;
    have_last = false;
  }

  TelemetryStore::MemoryStats Memory() const {
    TelemetryStore::MemoryStats m;
    for (const columnar::Segment& s : segments) {
      m.event_bytes += s.ApproxBytes();
    }
    m.event_bytes += CapBytes(seg_cum) + active.Bytes();
    m.record_bytes = rec.Bytes() +
                     slo_pool.capacity() * sizeof(columnar::SloPage) +
                     size_pool.capacity() * sizeof(columnar::SizePage) +
                     db_pool.capacity() * sizeof(columnar::DbIdPage);
    m.string_pool_bytes = pool.ApproxBytes();
    m.index_bytes = db_rows.ApproxBytes() + sub_rows.ApproxBytes() +
                    CapBytes(order) + CapBytes(subs) + CapBytes(sub_keys) +
                    CapBytes(sub_begin) + CapBytes(sub_dbs);
    m.total_bytes = m.event_bytes + m.record_bytes + m.string_pool_bytes +
                    m.index_bytes;
    m.num_segments = segments.size();
    m.column_reallocs = column_reallocs;
    return m;
  }

  void SyncGauge() {
    const size_t total = Memory().total_bytes;
    columnar::GlobalMetrics().resident_bytes->Add(
        static_cast<double>(total) - static_cast<double>(reported_bytes));
    reported_bytes = total;
  }
};

}  // namespace internal

using internal::StoreRep;

Edition DatabaseRecord::initial_edition() const {
  return SloLadder()[initial_slo_index].edition;
}

int DatabaseRecord::SloIndexAt(Timestamp ts) const {
  int slo = initial_slo_index;
  for (const SloChange& c : slo_changes) {
    if (c.timestamp > ts) break;
    slo = c.new_slo_index;
  }
  return slo;
}

Edition DatabaseRecord::EditionAt(Timestamp ts) const {
  return SloLadder()[SloIndexAt(ts)].edition;
}

bool DatabaseRecord::ChangedEditionDuringLifetime() const {
  for (const SloChange& c : slo_changes) {
    if (SloLadder()[c.old_slo_index].edition !=
        SloLadder()[c.new_slo_index].edition) {
      return true;
    }
  }
  return false;
}

double DatabaseRecord::ObservedLifespanDays(Timestamp censor_time) const {
  Timestamp end = censor_time;
  if (dropped_at.has_value() && *dropped_at < end) end = *dropped_at;
  if (end < created_at) return 0.0;
  return static_cast<double>(end - created_at) /
         static_cast<double>(kSecondsPerDay);
}

bool DatabaseRecord::IsDroppedBy(Timestamp ts) const {
  return dropped_at.has_value() && *dropped_at <= ts;
}

size_t EventSequence::size() const { return rep_->total_events; }

Event EventSequence::At(size_t i) const { return rep_->EventAt(i); }

EventSequence::Iterator::Iterator(const internal::StoreRep* rep, size_t i)
    : rep_(rep), i_(i) {
  const size_t sealed = rep->seg_cum.empty() ? 0 : rep->seg_cum.back();
  if (i >= sealed) {
    seg_ = rep->segments.size();
    in_seg_ = i - sealed;
  } else {
    seg_ = std::upper_bound(rep->seg_cum.begin(), rep->seg_cum.end(), i) -
           rep->seg_cum.begin();
    in_seg_ = i - (seg_ == 0 ? 0 : rep->seg_cum[seg_ - 1]);
  }
}

Event EventSequence::Iterator::operator*() const {
  if (seg_ == rep_->segments.size()) return rep_->DecodeActive(in_seg_);
  return rep_->DecodeSealed(seg_, in_seg_);
}

EventSequence::Iterator& EventSequence::Iterator::operator++() {
  ++i_;
  ++in_seg_;
  while (seg_ < rep_->segments.size() &&
         in_seg_ >= rep_->segments[seg_].n) {
    ++seg_;
    in_seg_ = 0;
  }
  return *this;
}

size_t DatabaseRecordRange::size() const { return rep_->rec.id.size(); }

DatabaseRecord DatabaseRecordRange::At(size_t i) const {
  const uint32_t row =
      rep_->finalized ? rep_->order[i] : static_cast<uint32_t>(i);
  return rep_->RecordAt(row);
}

TelemetryStore::TelemetryStore(std::string region_name,
                               int utc_offset_minutes,
                               HolidayCalendar holidays,
                               Timestamp window_start, Timestamp window_end)
    : TelemetryStore(std::move(region_name), utc_offset_minutes,
                     std::move(holidays), window_start, window_end,
                     Options()) {}

TelemetryStore::TelemetryStore(std::string region_name,
                               int utc_offset_minutes,
                               HolidayCalendar holidays,
                               Timestamp window_start, Timestamp window_end,
                               Options options)
    : region_name_(std::move(region_name)),
      utc_offset_minutes_(utc_offset_minutes),
      holidays_(std::move(holidays)),
      window_start_(window_start),
      window_end_(window_end),
      rep_(std::make_unique<StoreRep>(options.partition_seconds,
                                      window_start)) {}

TelemetryStore::~TelemetryStore() = default;
TelemetryStore::TelemetryStore(TelemetryStore&&) noexcept = default;
TelemetryStore& TelemetryStore::operator=(TelemetryStore&&) noexcept = default;

Status TelemetryStore::Append(Event event) {
  if (rep_->finalized) {
    return Status::FailedPrecondition("store is finalized; cannot append");
  }
  return AppendInternal(event);
}

Status TelemetryStore::AppendInternal(const Event& event) {
  StoreRep& r = *rep_;
  if (event.database_id == kInvalidId) {
    return Status::InvalidArgument("event has invalid database id");
  }
  if (event.subscription_id == kInvalidId) {
    return Status::InvalidArgument("event has invalid subscription id");
  }
  const uint8_t kind = static_cast<uint8_t>(event.kind());

  if (r.have_last && r.ordered) {
    if (std::tie(event.timestamp, event.database_id, kind) <
        std::tie(r.last_ts, r.last_db, r.last_kind)) {
      r.ordered = false;  // Finalize() will sort and replay.
    }
  }
  r.have_last = true;
  r.last_ts = event.timestamp;
  r.last_db = event.database_id;
  r.last_kind = kind;

  uint32_t row = columnar::kNilPage;  // UINT32_MAX = unresolved
  if (r.incremental()) {
    const int64_t part = internal::FloorDiv(event.timestamp - r.window_start,
                                            r.partition_seconds);
    if (!r.active.ts.empty() && part != r.active_partition) r.Seal();
    r.active_partition = part;

    switch (event.kind()) {
      case EventKind::kDatabaseCreated: {
        const auto& p = std::get<DatabaseCreatedPayload>(event.payload);
        if (r.db_rows.Find(event.database_id) != columnar::IdMap::kNotFound) {
          r.Poison(Status::InvalidArgument(
              "duplicate creation for database " +
              std::to_string(event.database_id)));
          break;
        }
        if (p.slo_index < 0 || p.slo_index >= NumSlos()) {
          r.Poison(Status::InvalidArgument("creation has invalid SLO index"));
          break;
        }
        row = static_cast<uint32_t>(r.rec.id.size());
        r.rec.id.push_back(event.database_id);
        r.rec.sub.push_back(event.subscription_id);
        r.rec.server.push_back(p.server_id);
        r.rec.sname.push_back(r.pool.Intern(p.server_name));
        r.rec.dname.push_back(r.pool.Intern(p.database_name));
        r.rec.stype.push_back(static_cast<uint8_t>(p.subscription_type));
        r.rec.slo0.push_back(static_cast<uint16_t>(p.slo_index));
        r.rec.created.push_back(event.timestamp);
        r.rec.dropped.push_back(internal::kNoDrop);
        r.rec.slo_head.push_back(columnar::kNilPage);
        r.rec.slo_tail.push_back(columnar::kNilPage);
        r.rec.slo_cnt.push_back(0);
        r.rec.size_head.push_back(columnar::kNilPage);
        r.rec.size_tail.push_back(columnar::kNilPage);
        r.rec.size_cnt.push_back(0);
        r.db_rows.Insert(event.database_id, row);
        uint32_t si = r.sub_rows.Find(event.subscription_id);
        if (si == columnar::IdMap::kNotFound) {
          si = static_cast<uint32_t>(r.subs.size());
          StoreRep::SubList list;
          list.sub = event.subscription_id;
          r.subs.push_back(list);
          r.sub_rows.Insert(event.subscription_id, si);
        }
        r.AppendDbChain(&r.subs[si], event.database_id);
        break;
      }
      case EventKind::kSloChanged: {
        row = r.db_rows.Find(event.database_id);
        if (row == columnar::IdMap::kNotFound) {
          r.Poison(Status::InvalidArgument(
              "SLO change before creation for database " +
              std::to_string(event.database_id)));
          break;
        }
        if (r.rec.dropped[row] != internal::kNoDrop) {
          r.Poison(Status::InvalidArgument(
              "SLO change after drop for database " +
              std::to_string(event.database_id)));
          break;
        }
        if (event.subscription_id != r.rec.sub[row]) {
          r.Poison(Status::InvalidArgument(
              "subscription mismatch for database " +
              std::to_string(event.database_id)));
          break;
        }
        const auto& p = std::get<SloChangedPayload>(event.payload);
        if (p.new_slo_index < 0 || p.new_slo_index >= NumSlos() ||
            p.old_slo_index < 0 || p.old_slo_index >= NumSlos()) {
          r.Poison(Status::InvalidArgument("SLO change has invalid index"));
          break;
        }
        const int64_t dt = event.timestamp - r.rec.created[row];
        if (dt < 0 ||
            dt > static_cast<int64_t>(std::numeric_limits<uint32_t>::max())) {
          r.Poison(Status::InvalidArgument(
              "event delta from creation out of range for database " +
              std::to_string(event.database_id)));
          break;
        }
        r.AppendSloChain(row, static_cast<uint32_t>(dt),
                         static_cast<uint16_t>(p.old_slo_index),
                         static_cast<uint16_t>(p.new_slo_index));
        break;
      }
      case EventKind::kSizeSample: {
        row = r.db_rows.Find(event.database_id);
        if (row == columnar::IdMap::kNotFound) {
          r.Poison(Status::InvalidArgument(
              "size sample before creation for database " +
              std::to_string(event.database_id)));
          break;
        }
        if (r.rec.dropped[row] != internal::kNoDrop) {
          r.Poison(Status::InvalidArgument(
              "size sample after drop for database " +
              std::to_string(event.database_id)));
          break;
        }
        if (event.subscription_id != r.rec.sub[row]) {
          r.Poison(Status::InvalidArgument(
              "subscription mismatch for database " +
              std::to_string(event.database_id)));
          break;
        }
        const auto& p = std::get<SizeSamplePayload>(event.payload);
        const int64_t dt = event.timestamp - r.rec.created[row];
        if (dt < 0 ||
            dt > static_cast<int64_t>(std::numeric_limits<uint32_t>::max())) {
          r.Poison(Status::InvalidArgument(
              "event delta from creation out of range for database " +
              std::to_string(event.database_id)));
          break;
        }
        r.AppendSizeChain(row, static_cast<uint32_t>(dt), p.size_mb);
        break;
      }
      case EventKind::kDatabaseDropped: {
        row = r.db_rows.Find(event.database_id);
        if (row == columnar::IdMap::kNotFound) {
          r.Poison(Status::InvalidArgument(
              "drop before creation for database " +
              std::to_string(event.database_id)));
          break;
        }
        if (r.rec.dropped[row] != internal::kNoDrop) {
          r.Poison(Status::InvalidArgument(
              "duplicate drop for database " +
              std::to_string(event.database_id)));
          break;
        }
        if (event.subscription_id != r.rec.sub[row]) {
          r.Poison(Status::InvalidArgument(
              "subscription mismatch for database " +
              std::to_string(event.database_id)));
          break;
        }
        if (event.timestamp < r.rec.created[row]) {
          r.Poison(Status::InvalidArgument(
              "drop precedes creation for database " +
              std::to_string(event.database_id)));
          break;
        }
        r.rec.dropped[row] = event.timestamp;
        break;
      }
    }
    if (r.poisoned) row = columnar::kNilPage;
  }

  // Append to the active segment (always, so events() reflects every
  // accepted append in order).
  StoreRep::Active& a = r.active;
  uint64_t* rc = &r.column_reallocs;
  internal::PushCounted(a.ts, event.timestamp, rc);
  internal::PushCounted(a.db, static_cast<uint64_t>(event.database_id), rc);
  internal::PushCounted(a.sub, static_cast<uint64_t>(event.subscription_id),
                        rc);
  internal::PushCounted(a.row, row, rc);
  internal::PushCounted(a.kind, kind, rc);
  switch (event.kind()) {
    case EventKind::kDatabaseCreated: {
      const auto& p = std::get<DatabaseCreatedPayload>(event.payload);
      internal::PushCounted(a.pix, static_cast<uint32_t>(a.c_server.size()),
                            rc);
      internal::PushCounted(a.c_server, static_cast<uint64_t>(p.server_id),
                            rc);
      internal::PushCounted(a.c_sname, r.pool.Intern(p.server_name), rc);
      internal::PushCounted(a.c_dname, r.pool.Intern(p.database_name), rc);
      internal::PushCounted(a.c_slo, static_cast<uint16_t>(p.slo_index), rc);
      internal::PushCounted(a.c_stype,
                            static_cast<uint8_t>(p.subscription_type), rc);
      break;
    }
    case EventKind::kSloChanged: {
      const auto& p = std::get<SloChangedPayload>(event.payload);
      internal::PushCounted(a.pix, static_cast<uint32_t>(a.slo_old.size()),
                            rc);
      internal::PushCounted(a.slo_old, static_cast<uint16_t>(p.old_slo_index),
                            rc);
      internal::PushCounted(a.slo_new, static_cast<uint16_t>(p.new_slo_index),
                            rc);
      break;
    }
    case EventKind::kSizeSample: {
      const auto& p = std::get<SizeSamplePayload>(event.payload);
      internal::PushCounted(a.pix, static_cast<uint32_t>(a.size_mb.size()),
                            rc);
      internal::PushCounted(a.size_mb, p.size_mb, rc);
      break;
    }
    case EventKind::kDatabaseDropped:
      internal::PushCounted(a.pix, 0u, rc);
      break;
  }
  ++r.total_events;
  if ((r.total_events & 0xFFFFu) == 0) r.SyncGauge();
  return Status::OK();
}

void TelemetryStore::Reserve(size_t n) {
  StoreRep::Active& a = rep_->active;
  a.ts.reserve(a.ts.size() + n);
  a.db.reserve(a.db.size() + n);
  a.sub.reserve(a.sub.size() + n);
  a.row.reserve(a.row.size() + n);
  a.kind.reserve(a.kind.size() + n);
  a.pix.reserve(a.pix.size() + n);
  // Per-kind payload columns share the same ceiling: any subset of the
  // n reserved events may carry any payload. Sealing packs segments to
  // exact size, so the over-reserve is transient.
  a.slo_old.reserve(a.slo_old.size() + n);
  a.slo_new.reserve(a.slo_new.size() + n);
  a.size_mb.reserve(a.size_mb.size() + n);
  a.c_server.reserve(a.c_server.size() + n);
  a.c_sname.reserve(a.c_sname.size() + n);
  a.c_dname.reserve(a.c_dname.size() + n);
  a.c_slo.reserve(a.c_slo.size() + n);
  a.c_stype.reserve(a.c_stype.size() + n);
}

Status TelemetryStore::AppendEvents(std::vector<Event>&& batch) {
  if (rep_->finalized) {
    return Status::FailedPrecondition("store is finalized; cannot append");
  }
  for (const Event& event : batch) {
    if (event.database_id == kInvalidId) {
      return Status::InvalidArgument("event has invalid database id");
    }
    if (event.subscription_id == kInvalidId) {
      return Status::InvalidArgument("event has invalid subscription id");
    }
  }
  Reserve(batch.size());
  for (const Event& event : batch) {
    CLOUDSURV_RETURN_NOT_OK(AppendInternal(event));
  }
  batch.clear();
  return Status::OK();
}

Status TelemetryStore::Finalize() {
  StoreRep& r = *rep_;
  if (r.finalized) {
    return Status::FailedPrecondition("store already finalized");
  }
  if (!r.ordered) {
    // Classic contract: gather, stable-sort by (timestamp, database,
    // lifecycle rank) — so a creation precedes same-second samples and
    // a drop follows them — and replay through the ordered path. The
    // stable sort preserves append order on ties, byte-identical to
    // the struct store's Finalize.
    std::vector<Event> all;
    all.reserve(r.total_events);
    for (auto it = events().begin(); it != events().end(); ++it) {
      all.push_back(*it);
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Event& a, const Event& b) {
                       if (a.timestamp != b.timestamp)
                         return a.timestamp < b.timestamp;
                       if (a.database_id != b.database_id)
                         return a.database_id < b.database_id;
                       return static_cast<int>(a.kind()) <
                              static_cast<int>(b.kind());
                     });
    r.ResetEventState();
    for (const Event& event : all) {
      CLOUDSURV_RETURN_NOT_OK(AppendInternal(event));
    }
  }
  if (r.poisoned) return r.deferred_error;
  r.Seal();

  // Freeze records: id-sorted iteration order and CSR list columns.
  const size_t n = r.rec.id.size();
  r.order.resize(n);
  std::iota(r.order.begin(), r.order.end(), 0u);
  std::sort(r.order.begin(), r.order.end(),
            [&r](uint32_t a, uint32_t b) { return r.rec.id[a] < r.rec.id[b]; });

  r.rec.slo_begin.resize(n + 1);
  r.rec.size_begin.resize(n + 1);
  uint64_t slo_total = 0, size_total = 0;
  for (size_t row = 0; row < n; ++row) {
    r.rec.slo_begin[row] = static_cast<uint32_t>(slo_total);
    r.rec.size_begin[row] = static_cast<uint32_t>(size_total);
    slo_total += r.rec.slo_cnt[row];
    size_total += r.rec.size_cnt[row];
  }
  r.rec.slo_begin[n] = static_cast<uint32_t>(slo_total);
  r.rec.size_begin[n] = static_cast<uint32_t>(size_total);
  if (slo_total > std::numeric_limits<uint32_t>::max() ||
      size_total > std::numeric_limits<uint32_t>::max()) {
    return Status::Internal("per-record list columns exceed 2^32 entries");
  }
  r.rec.csr_slo_dt.resize(slo_total);
  r.rec.csr_slo_old.resize(slo_total);
  r.rec.csr_slo_new.resize(slo_total);
  r.rec.csr_size_dt.resize(size_total);
  r.rec.csr_size_mb.resize(size_total);
  for (size_t row = 0; row < n; ++row) {
    uint32_t out = r.rec.slo_begin[row];
    for (uint32_t page = r.rec.slo_head[row]; page != columnar::kNilPage;
         page = r.slo_pool[page].next) {
      const columnar::SloPage& p = r.slo_pool[page];
      for (uint16_t k = 0; k < p.count; ++k, ++out) {
        r.rec.csr_slo_dt[out] = p.dt[k];
        r.rec.csr_slo_old[out] = p.old_slo[k];
        r.rec.csr_slo_new[out] = p.new_slo[k];
      }
    }
    out = r.rec.size_begin[row];
    for (uint32_t page = r.rec.size_head[row]; page != columnar::kNilPage;
         page = r.size_pool[page].next) {
      const columnar::SizePage& p = r.size_pool[page];
      for (uint16_t k = 0; k < p.count; ++k, ++out) {
        r.rec.csr_size_dt[out] = p.dt[k];
        r.rec.csr_size_mb[out] = p.mb[k];
      }
    }
  }

  // Subscription CSR: keys sorted, database ids in creation order.
  std::vector<uint32_t> sub_order(r.subs.size());
  std::iota(sub_order.begin(), sub_order.end(), 0u);
  std::sort(sub_order.begin(), sub_order.end(), [&r](uint32_t a, uint32_t b) {
    return r.subs[a].sub < r.subs[b].sub;
  });
  r.sub_keys.resize(r.subs.size());
  r.sub_begin.resize(r.subs.size() + 1);
  uint64_t db_total = 0;
  for (size_t i = 0; i < sub_order.size(); ++i) {
    const StoreRep::SubList& list = r.subs[sub_order[i]];
    r.sub_keys[i] = list.sub;
    r.sub_begin[i] = db_total;
    db_total += list.count;
  }
  r.sub_begin[r.subs.size()] = db_total;
  r.sub_dbs.resize(db_total);
  for (size_t i = 0; i < sub_order.size(); ++i) {
    const StoreRep::SubList& list = r.subs[sub_order[i]];
    uint64_t out = r.sub_begin[i];
    for (uint32_t page = list.head; page != columnar::kNilPage;
         page = r.db_pool[page].next) {
      const columnar::DbIdPage& p = r.db_pool[page];
      for (uint16_t k = 0; k < p.count; ++k, ++out) {
        r.sub_dbs[out] = p.ids[k];
      }
    }
  }

  // Drop live-ingest state: chain pools, heads/tails, hash indexes.
  std::vector<columnar::SloPage>().swap(r.slo_pool);
  std::vector<columnar::SizePage>().swap(r.size_pool);
  std::vector<columnar::DbIdPage>().swap(r.db_pool);
  std::vector<uint32_t>().swap(r.rec.slo_head);
  std::vector<uint32_t>().swap(r.rec.slo_tail);
  std::vector<uint32_t>().swap(r.rec.slo_cnt);
  std::vector<uint32_t>().swap(r.rec.size_head);
  std::vector<uint32_t>().swap(r.rec.size_tail);
  std::vector<uint32_t>().swap(r.rec.size_cnt);
  std::vector<StoreRep::SubList>().swap(r.subs);
  r.db_rows.Clear();
  r.sub_rows.Clear();

  r.finalized = true;
  r.SyncGauge();
  return Status::OK();
}

bool TelemetryStore::finalized() const { return rep_->finalized; }

bool TelemetryStore::readable() const { return rep_->readable(); }

EventSequence TelemetryStore::events() const {
  return EventSequence(rep_.get());
}

DatabaseRecordRange TelemetryStore::databases() const {
  return DatabaseRecordRange(rep_.get());
}

Result<DatabaseRecord> TelemetryStore::FindDatabase(DatabaseId id) const {
  const StoreRep& r = *rep_;
  if (r.finalized) {
    auto it = std::lower_bound(
        r.order.begin(), r.order.end(), id,
        [&r](uint32_t row, DatabaseId key) { return r.rec.id[row] < key; });
    if (it != r.order.end() && r.rec.id[*it] == id) return r.RecordAt(*it);
  } else {
    const uint32_t row = r.db_rows.Find(id);
    if (row != columnar::IdMap::kNotFound) return r.RecordAt(row);
  }
  return Status::NotFound("no database with id " + std::to_string(id));
}

columnar::SubscriptionDatabases TelemetryStore::DatabasesOfSubscription(
    SubscriptionId sub) const {
  const StoreRep& r = *rep_;
  if (r.finalized) {
    auto it = std::lower_bound(r.sub_keys.begin(), r.sub_keys.end(), sub);
    if (it == r.sub_keys.end() || *it != sub) {
      return columnar::SubscriptionDatabases();
    }
    const size_t i = it - r.sub_keys.begin();
    return columnar::SubscriptionDatabases(
        r.sub_dbs.data() + r.sub_begin[i],
        r.sub_begin[i + 1] - r.sub_begin[i]);
  }
  const uint32_t si = r.sub_rows.Find(sub);
  if (si == columnar::IdMap::kNotFound) {
    return columnar::SubscriptionDatabases();
  }
  return columnar::SubscriptionDatabases(&r.db_pool, r.subs[si].head,
                                         r.subs[si].count);
}

std::vector<SubscriptionId> TelemetryStore::AllSubscriptions() const {
  const StoreRep& r = *rep_;
  if (r.finalized) return r.sub_keys;
  std::vector<SubscriptionId> out;
  out.reserve(r.subs.size());
  for (const StoreRep::SubList& list : r.subs) out.push_back(list.sub);
  std::sort(out.begin(), out.end());
  return out;
}

size_t TelemetryStore::num_events() const { return rep_->total_events; }

size_t TelemetryStore::num_databases() const { return rep_->rec.id.size(); }

TelemetryStore::MemoryStats TelemetryStore::memory() const {
  return rep_->Memory();
}

namespace {

// CSV field escaping is avoided by restricting names: the simulator only
// emits [a-z0-9-] names, and ImportCsv rejects embedded commas.
std::string EventToCsvLine(const Event& e) {
  std::ostringstream os;
  os << FormatIso8601(e.timestamp) << "," << EventKindToString(e.kind())
     << "," << e.database_id << "," << e.subscription_id << ",";
  switch (e.kind()) {
    case EventKind::kDatabaseCreated: {
      const auto& p = std::get<DatabaseCreatedPayload>(e.payload);
      os << p.server_id << "," << p.server_name << "," << p.database_name
         << "," << SloLadder()[p.slo_index].name << ","
         << SubscriptionTypeToString(p.subscription_type);
      break;
    }
    case EventKind::kSloChanged: {
      const auto& p = std::get<SloChangedPayload>(e.payload);
      os << SloLadder()[p.old_slo_index].name << ","
         << SloLadder()[p.new_slo_index].name;
      break;
    }
    case EventKind::kSizeSample: {
      const auto& p = std::get<SizeSamplePayload>(e.payload);
      os << FormatDouble(p.size_mb, 3);
      break;
    }
    case EventKind::kDatabaseDropped:
      break;
  }
  return os.str();
}

int SubscriptionTypeByName(const std::string& name) {
  for (int i = 0; i < kNumSubscriptionTypes; ++i) {
    if (name == SubscriptionTypeToString(static_cast<SubscriptionType>(i))) {
      return i;
    }
  }
  return -1;
}

}  // namespace

std::string TelemetryStore::ExportCsv() const {
  std::string out =
      "timestamp,kind,database_id,subscription_id,f1,f2,f3,f4,f5\n";
  const EventSequence seq = events();
  for (auto it = seq.begin(); it != seq.end(); ++it) {
    out += EventToCsvLine(*it);
    out += "\n";
  }
  return out;
}

Result<TelemetryStore> TelemetryStore::ImportCsv(
    const std::string& csv, std::string region_name, int utc_offset_minutes,
    HolidayCalendar holidays, Timestamp window_start, Timestamp window_end) {
  TelemetryStore store(std::move(region_name), utc_offset_minutes,
                       std::move(holidays), window_start, window_end);
  std::istringstream is(csv);
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (first) {  // header
      first = false;
      continue;
    }
    if (TrimWhitespace(line).empty()) continue;
    const std::vector<std::string> f = SplitString(line, ',');
    if (f.size() < 4) {
      return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                     ": too few fields");
    }
    auto ts = ParseIso8601(f[0]);
    if (!ts.ok()) return ts.status();
    const DatabaseId db = std::stoull(f[2]);
    const SubscriptionId sub = std::stoull(f[3]);
    Event e;
    if (f[1] == "DatabaseCreated") {
      if (f.size() < 9) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": malformed creation");
      }
      DatabaseCreatedPayload p;
      p.server_id = std::stoull(f[4]);
      p.server_name = f[5];
      p.database_name = f[6];
      p.slo_index = SloIndexByName(f[7]);
      if (p.slo_index < 0) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": unknown SLO " + f[7]);
      }
      const int st = SubscriptionTypeByName(f[8]);
      if (st < 0) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": unknown subscription type " + f[8]);
      }
      p.subscription_type = static_cast<SubscriptionType>(st);
      e = MakeCreatedEvent(*ts, db, sub, std::move(p));
    } else if (f[1] == "SloChanged") {
      if (f.size() < 6) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": malformed SLO change");
      }
      const int old_slo = SloIndexByName(f[4]);
      const int new_slo = SloIndexByName(f[5]);
      if (old_slo < 0 || new_slo < 0) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": unknown SLO name");
      }
      e = MakeSloChangedEvent(*ts, db, sub, old_slo, new_slo);
    } else if (f[1] == "SizeSample") {
      if (f.size() < 5) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": malformed size sample");
      }
      e = MakeSizeSampleEvent(*ts, db, sub, std::stod(f[4]));
    } else if (f[1] == "DatabaseDropped") {
      e = MakeDroppedEvent(*ts, db, sub);
    } else {
      return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                     ": unknown event kind " + f[1]);
    }
    CLOUDSURV_RETURN_NOT_OK(store.Append(std::move(e)));
  }
  CLOUDSURV_RETURN_NOT_OK(store.Finalize());
  return store;
}

}  // namespace cloudsurv::telemetry
