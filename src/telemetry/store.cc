#include "telemetry/store.h"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "common/string_util.h"

namespace cloudsurv::telemetry {

Edition DatabaseRecord::initial_edition() const {
  return SloLadder()[initial_slo_index].edition;
}

int DatabaseRecord::SloIndexAt(Timestamp ts) const {
  int slo = initial_slo_index;
  for (const SloChange& c : slo_changes) {
    if (c.timestamp > ts) break;
    slo = c.new_slo_index;
  }
  return slo;
}

Edition DatabaseRecord::EditionAt(Timestamp ts) const {
  return SloLadder()[SloIndexAt(ts)].edition;
}

bool DatabaseRecord::ChangedEditionDuringLifetime() const {
  for (const SloChange& c : slo_changes) {
    if (SloLadder()[c.old_slo_index].edition !=
        SloLadder()[c.new_slo_index].edition) {
      return true;
    }
  }
  return false;
}

double DatabaseRecord::ObservedLifespanDays(Timestamp censor_time) const {
  Timestamp end = censor_time;
  if (dropped_at.has_value() && *dropped_at < end) end = *dropped_at;
  if (end < created_at) return 0.0;
  return static_cast<double>(end - created_at) /
         static_cast<double>(kSecondsPerDay);
}

bool DatabaseRecord::IsDroppedBy(Timestamp ts) const {
  return dropped_at.has_value() && *dropped_at <= ts;
}

TelemetryStore::TelemetryStore(std::string region_name,
                               int utc_offset_minutes,
                               HolidayCalendar holidays,
                               Timestamp window_start, Timestamp window_end)
    : region_name_(std::move(region_name)),
      utc_offset_minutes_(utc_offset_minutes),
      holidays_(std::move(holidays)),
      window_start_(window_start),
      window_end_(window_end) {}

Status TelemetryStore::Append(Event event) {
  if (finalized_) {
    return Status::FailedPrecondition("store is finalized; cannot append");
  }
  if (event.database_id == kInvalidId) {
    return Status::InvalidArgument("event has invalid database id");
  }
  if (event.subscription_id == kInvalidId) {
    return Status::InvalidArgument("event has invalid subscription id");
  }
  events_.push_back(std::move(event));
  return Status::OK();
}

void TelemetryStore::Reserve(size_t n) {
  events_.reserve(events_.size() + n);
}

Status TelemetryStore::AppendEvents(std::vector<Event>&& batch) {
  if (finalized_) {
    return Status::FailedPrecondition("store is finalized; cannot append");
  }
  for (const Event& event : batch) {
    if (event.database_id == kInvalidId) {
      return Status::InvalidArgument("event has invalid database id");
    }
    if (event.subscription_id == kInvalidId) {
      return Status::InvalidArgument("event has invalid subscription id");
    }
  }
  if (events_.empty()) {
    events_ = std::move(batch);
  } else {
    events_.reserve(events_.size() + batch.size());
    std::move(batch.begin(), batch.end(), std::back_inserter(events_));
    batch.clear();
  }
  return Status::OK();
}

Status TelemetryStore::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("store already finalized");
  }
  // Order: timestamp, then database id, then lifecycle rank so that a
  // creation precedes same-second samples and a drop follows them.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.timestamp != b.timestamp)
                       return a.timestamp < b.timestamp;
                     if (a.database_id != b.database_id)
                       return a.database_id < b.database_id;
                     return static_cast<int>(a.kind()) <
                            static_cast<int>(b.kind());
                   });

  std::unordered_map<DatabaseId, size_t> index;
  for (const Event& e : events_) {
    auto it = index.find(e.database_id);
    switch (e.kind()) {
      case EventKind::kDatabaseCreated: {
        if (it != index.end()) {
          return Status::InvalidArgument(
              "duplicate creation for database " +
              std::to_string(e.database_id));
        }
        const auto& p = std::get<DatabaseCreatedPayload>(e.payload);
        if (p.slo_index < 0 || p.slo_index >= NumSlos()) {
          return Status::InvalidArgument("creation has invalid SLO index");
        }
        DatabaseRecord rec;
        rec.id = e.database_id;
        rec.subscription_id = e.subscription_id;
        rec.server_id = p.server_id;
        rec.server_name = p.server_name;
        rec.database_name = p.database_name;
        rec.subscription_type = p.subscription_type;
        rec.created_at = e.timestamp;
        rec.initial_slo_index = p.slo_index;
        index.emplace(e.database_id, records_.size());
        records_.push_back(std::move(rec));
        break;
      }
      case EventKind::kSloChanged: {
        if (it == index.end()) {
          return Status::InvalidArgument(
              "SLO change before creation for database " +
              std::to_string(e.database_id));
        }
        DatabaseRecord& rec = records_[it->second];
        if (rec.dropped_at.has_value()) {
          return Status::InvalidArgument(
              "SLO change after drop for database " +
              std::to_string(e.database_id));
        }
        const auto& p = std::get<SloChangedPayload>(e.payload);
        if (p.new_slo_index < 0 || p.new_slo_index >= NumSlos() ||
            p.old_slo_index < 0 || p.old_slo_index >= NumSlos()) {
          return Status::InvalidArgument("SLO change has invalid index");
        }
        rec.slo_changes.push_back(
            SloChange{e.timestamp, p.old_slo_index, p.new_slo_index});
        break;
      }
      case EventKind::kSizeSample: {
        if (it == index.end()) {
          return Status::InvalidArgument(
              "size sample before creation for database " +
              std::to_string(e.database_id));
        }
        DatabaseRecord& rec = records_[it->second];
        if (rec.dropped_at.has_value()) {
          return Status::InvalidArgument(
              "size sample after drop for database " +
              std::to_string(e.database_id));
        }
        const auto& p = std::get<SizeSamplePayload>(e.payload);
        rec.size_samples.push_back(SizeObservation{e.timestamp, p.size_mb});
        break;
      }
      case EventKind::kDatabaseDropped: {
        if (it == index.end()) {
          return Status::InvalidArgument(
              "drop before creation for database " +
              std::to_string(e.database_id));
        }
        DatabaseRecord& rec = records_[it->second];
        if (rec.dropped_at.has_value()) {
          return Status::InvalidArgument(
              "duplicate drop for database " +
              std::to_string(e.database_id));
        }
        if (e.timestamp < rec.created_at) {
          return Status::InvalidArgument(
              "drop precedes creation for database " +
              std::to_string(e.database_id));
        }
        rec.dropped_at = e.timestamp;
        break;
      }
    }
  }

  // Records in DatabaseId order for deterministic iteration.
  std::sort(records_.begin(), records_.end(),
            [](const DatabaseRecord& a, const DatabaseRecord& b) {
              return a.id < b.id;
            });
  record_index_.clear();
  for (size_t i = 0; i < records_.size(); ++i) {
    record_index_.emplace(records_[i].id, i);
  }
  // Per-subscription creation-ordered database lists.
  std::vector<size_t> by_creation(records_.size());
  for (size_t i = 0; i < by_creation.size(); ++i) by_creation[i] = i;
  std::sort(by_creation.begin(), by_creation.end(),
            [this](size_t a, size_t b) {
              if (records_[a].created_at != records_[b].created_at)
                return records_[a].created_at < records_[b].created_at;
              return records_[a].id < records_[b].id;
            });
  for (size_t i : by_creation) {
    by_subscription_[records_[i].subscription_id].push_back(records_[i].id);
  }

  finalized_ = true;
  return Status::OK();
}

Result<const DatabaseRecord*> TelemetryStore::FindDatabase(
    DatabaseId id) const {
  auto it = record_index_.find(id);
  if (it == record_index_.end()) {
    return Status::NotFound("no database with id " + std::to_string(id));
  }
  return &records_[it->second];
}

const std::vector<DatabaseId>& TelemetryStore::DatabasesOfSubscription(
    SubscriptionId sub) const {
  static const auto* kEmpty = new std::vector<DatabaseId>();
  auto it = by_subscription_.find(sub);
  if (it == by_subscription_.end()) return *kEmpty;
  return it->second;
}

std::vector<SubscriptionId> TelemetryStore::AllSubscriptions() const {
  std::vector<SubscriptionId> out;
  out.reserve(by_subscription_.size());
  for (const auto& [sub, dbs] : by_subscription_) out.push_back(sub);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

// CSV field escaping is avoided by restricting names: the simulator only
// emits [a-z0-9-] names, and ImportCsv rejects embedded commas.
std::string EventToCsvLine(const Event& e) {
  std::ostringstream os;
  os << FormatIso8601(e.timestamp) << "," << EventKindToString(e.kind())
     << "," << e.database_id << "," << e.subscription_id << ",";
  switch (e.kind()) {
    case EventKind::kDatabaseCreated: {
      const auto& p = std::get<DatabaseCreatedPayload>(e.payload);
      os << p.server_id << "," << p.server_name << "," << p.database_name
         << "," << SloLadder()[p.slo_index].name << ","
         << SubscriptionTypeToString(p.subscription_type);
      break;
    }
    case EventKind::kSloChanged: {
      const auto& p = std::get<SloChangedPayload>(e.payload);
      os << SloLadder()[p.old_slo_index].name << ","
         << SloLadder()[p.new_slo_index].name;
      break;
    }
    case EventKind::kSizeSample: {
      const auto& p = std::get<SizeSamplePayload>(e.payload);
      os << FormatDouble(p.size_mb, 3);
      break;
    }
    case EventKind::kDatabaseDropped:
      break;
  }
  return os.str();
}

int SubscriptionTypeByName(const std::string& name) {
  for (int i = 0; i < kNumSubscriptionTypes; ++i) {
    if (name == SubscriptionTypeToString(static_cast<SubscriptionType>(i))) {
      return i;
    }
  }
  return -1;
}

}  // namespace

std::string TelemetryStore::ExportCsv() const {
  std::string out =
      "timestamp,kind,database_id,subscription_id,f1,f2,f3,f4,f5\n";
  for (const Event& e : events_) {
    out += EventToCsvLine(e);
    out += "\n";
  }
  return out;
}

Result<TelemetryStore> TelemetryStore::ImportCsv(
    const std::string& csv, std::string region_name, int utc_offset_minutes,
    HolidayCalendar holidays, Timestamp window_start, Timestamp window_end) {
  TelemetryStore store(std::move(region_name), utc_offset_minutes,
                       std::move(holidays), window_start, window_end);
  std::istringstream is(csv);
  std::string line;
  bool first = true;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (first) {  // header
      first = false;
      continue;
    }
    if (TrimWhitespace(line).empty()) continue;
    const std::vector<std::string> f = SplitString(line, ',');
    if (f.size() < 4) {
      return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                     ": too few fields");
    }
    auto ts = ParseIso8601(f[0]);
    if (!ts.ok()) return ts.status();
    const DatabaseId db = std::stoull(f[2]);
    const SubscriptionId sub = std::stoull(f[3]);
    Event e;
    if (f[1] == "DatabaseCreated") {
      if (f.size() < 9) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": malformed creation");
      }
      DatabaseCreatedPayload p;
      p.server_id = std::stoull(f[4]);
      p.server_name = f[5];
      p.database_name = f[6];
      p.slo_index = SloIndexByName(f[7]);
      if (p.slo_index < 0) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": unknown SLO " + f[7]);
      }
      const int st = SubscriptionTypeByName(f[8]);
      if (st < 0) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": unknown subscription type " + f[8]);
      }
      p.subscription_type = static_cast<SubscriptionType>(st);
      e = MakeCreatedEvent(*ts, db, sub, std::move(p));
    } else if (f[1] == "SloChanged") {
      if (f.size() < 6) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": malformed SLO change");
      }
      const int old_slo = SloIndexByName(f[4]);
      const int new_slo = SloIndexByName(f[5]);
      if (old_slo < 0 || new_slo < 0) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": unknown SLO name");
      }
      e = MakeSloChangedEvent(*ts, db, sub, old_slo, new_slo);
    } else if (f[1] == "SizeSample") {
      if (f.size() < 5) {
        return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                       ": malformed size sample");
      }
      e = MakeSizeSampleEvent(*ts, db, sub, std::stod(f[4]));
    } else if (f[1] == "DatabaseDropped") {
      e = MakeDroppedEvent(*ts, db, sub);
    } else {
      return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                     ": unknown event kind " + f[1]);
    }
    CLOUDSURV_RETURN_NOT_OK(store.Append(std::move(e)));
  }
  CLOUDSURV_RETURN_NOT_OK(store.Finalize());
  return store;
}

}  // namespace cloudsurv::telemetry
