#ifndef CLOUDSURV_TELEMETRY_TYPES_H_
#define CLOUDSURV_TELEMETRY_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cloudsurv::telemetry {

/// Opaque numeric identifiers. The control plane assigns them densely
/// starting at 0 within one telemetry store.
using DatabaseId = uint64_t;
using SubscriptionId = uint64_t;
using ServerId = uint64_t;

inline constexpr uint64_t kInvalidId = static_cast<uint64_t>(-1);

/// Database edition (price/performance family). Basic and Standard are
/// served from the remote storage tier, Premium from local storage
/// (paper section 2).
enum class Edition : uint8_t {
  kBasic = 0,
  kStandard = 1,
  kPremium = 2,
};

inline constexpr int kNumEditions = 3;

/// Stable display name ("Basic" / "Standard" / "Premium").
const char* EditionToString(Edition edition);

/// Parses an edition name; returns false on unknown names.
bool EditionFromString(const std::string& name, Edition* out);

/// A purchasable service level objective: performance level within an
/// edition, with its database transaction unit (DTU) allocation and the
/// maximum data size it permits.
struct ServiceLevelObjective {
  std::string name;       ///< e.g. "S2", "P1".
  Edition edition;        ///< Family the SLO belongs to.
  int dtus;               ///< Database transaction units (paper ref [5]).
  double max_size_mb;     ///< Data volume cap in megabytes.
};

/// The fixed SLO ladder sold by the service, mirroring the public Azure
/// SQL DB DTU model circa the paper's study:
///   Basic: Basic(5)
///   Standard: S0(10) S1(20) S2(50) S3(100)
///   Premium: P1(125) P2(250) P4(500) P6(1000) P11(1750) P15(4000)
/// Index into this ladder is the canonical "performance level" used by
/// telemetry events and features.
const std::vector<ServiceLevelObjective>& SloLadder();

/// Number of entries in SloLadder().
int NumSlos();

/// Index of the named SLO in the ladder, or -1 if unknown.
int SloIndexByName(const std::string& name);

/// Index of the cheapest / most expensive SLO of an edition.
int CheapestSloOfEdition(Edition edition);
int MostExpensiveSloOfEdition(Edition edition);

/// All ladder indexes belonging to `edition`, cheapest first.
std::vector<int> SlosOfEdition(Edition edition);

/// Azure offers several commercial subscription flavors; the paper uses
/// "subscription type at creation time" as a one-hot feature family.
enum class SubscriptionType : uint8_t {
  kFreeTrial = 0,
  kPayAsYouGo = 1,
  kEnterpriseAgreement = 2,
  kDevTestBenefit = 3,      ///< MSDN/Visual Studio style benefit programs.
  kCloudServiceProvider = 4,
  kStudent = 5,
};

inline constexpr int kNumSubscriptionTypes = 6;

/// Stable display name for a subscription type.
const char* SubscriptionTypeToString(SubscriptionType type);

}  // namespace cloudsurv::telemetry

#endif  // CLOUDSURV_TELEMETRY_TYPES_H_
