#ifndef CLOUDSURV_TELEMETRY_STORE_H_
#define CLOUDSURV_TELEMETRY_STORE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "telemetry/civil_time.h"
#include "telemetry/events.h"
#include "telemetry/types.h"

namespace cloudsurv::telemetry {

/// One recorded SLO transition of a database.
struct SloChange {
  Timestamp timestamp = 0;
  int old_slo_index = 0;
  int new_slo_index = 0;
};

/// One recorded data-size sample of a database.
struct SizeObservation {
  Timestamp timestamp = 0;
  double size_mb = 0.0;
};

/// Materialized per-database view assembled from the event log. This is
/// the unit the cohort builder, survival study and feature extractor all
/// operate on.
struct DatabaseRecord {
  DatabaseId id = kInvalidId;
  SubscriptionId subscription_id = kInvalidId;
  ServerId server_id = kInvalidId;
  std::string server_name;
  std::string database_name;
  SubscriptionType subscription_type = SubscriptionType::kPayAsYouGo;
  Timestamp created_at = 0;
  /// Empty while the database is still alive at the end of the
  /// observation window (right-censored).
  std::optional<Timestamp> dropped_at;
  int initial_slo_index = 0;
  std::vector<SloChange> slo_changes;      ///< Chronological.
  std::vector<SizeObservation> size_samples;  ///< Chronological.

  /// Edition the database was created under. Subgroup assignment in the
  /// paper's experiments uses this (creation edition), so groups stay
  /// mutually exclusive even when databases later change edition.
  Edition initial_edition() const;

  /// SLO ladder index in effect at time `ts` (creation SLO before any
  /// change; the latest change at or before `ts` otherwise).
  int SloIndexAt(Timestamp ts) const;

  /// Edition in effect at time `ts`.
  Edition EditionAt(Timestamp ts) const;

  /// True iff any SLO change crossed an edition boundary during the
  /// database's observed lifetime ("changed" vs "always" in Figure 3).
  bool ChangedEditionDuringLifetime() const;

  /// Observed lifespan in fractional days up to `censor_time`:
  /// (min(dropped_at, censor_time) - created_at) / 86400.
  double ObservedLifespanDays(Timestamp censor_time) const;

  /// True iff the database was dropped at or before `ts`.
  bool IsDroppedBy(Timestamp ts) const;
};

/// Append-only event log with per-database and per-subscription indexes.
///
/// Usage: Append() events in any order, then Finalize() once; Finalize
/// sorts the log, validates lifecycle invariants (exactly one creation
/// per database, no events outside the create..drop span, drop at most
/// once) and materializes DatabaseRecords. All read accessors require a
/// finalized store.
class TelemetryStore {
 public:
  /// `region_name` labels outputs; `utc_offset_minutes` converts event
  /// timestamps to region-local civil time for calendar features.
  TelemetryStore(std::string region_name, int utc_offset_minutes,
                 HolidayCalendar holidays, Timestamp window_start,
                 Timestamp window_end);

  TelemetryStore(TelemetryStore&&) = default;
  TelemetryStore& operator=(TelemetryStore&&) = default;
  TelemetryStore(const TelemetryStore&) = delete;
  TelemetryStore& operator=(const TelemetryStore&) = delete;

  /// Appends one event. Only valid before Finalize().
  Status Append(Event event);

  /// Pre-sizes the event log for `n` further events (capacity hint for
  /// bulk loads; never shrinks).
  void Reserve(size_t n);

  /// Moves a whole batch of events into the log without per-event
  /// copies. All-or-nothing: the batch is validated first, and on any
  /// invalid event nothing is appended (`batch` is left untouched).
  /// Only valid before Finalize().
  Status AppendEvents(std::vector<Event>&& batch);

  /// Sorts, validates and indexes the log. Idempotent errors: a second
  /// call returns FailedPrecondition.
  Status Finalize();

  bool finalized() const { return finalized_; }

  const std::string& region_name() const { return region_name_; }
  int utc_offset_minutes() const { return utc_offset_minutes_; }
  const HolidayCalendar& holidays() const { return holidays_; }
  /// Observation window: databases created in [window_start, window_end);
  /// databases alive at window_end are right-censored.
  Timestamp window_start() const { return window_start_; }
  Timestamp window_end() const { return window_end_; }

  /// All events in timestamp order. Requires finalized().
  const std::vector<Event>& events() const { return events_; }

  /// All materialized database records, ordered by DatabaseId.
  /// Requires finalized().
  const std::vector<DatabaseRecord>& databases() const { return records_; }

  /// Record lookup by id; NotFound if the id never appeared.
  Result<const DatabaseRecord*> FindDatabase(DatabaseId id) const;

  /// Ids of all databases ever created by `sub` within the window,
  /// ordered by creation time. Empty for unknown subscriptions.
  const std::vector<DatabaseId>& DatabasesOfSubscription(
      SubscriptionId sub) const;

  /// All subscription ids seen, sorted.
  std::vector<SubscriptionId> AllSubscriptions() const;

  size_t num_events() const { return events_.size(); }
  size_t num_databases() const { return records_.size(); }

  /// Serializes the event log as CSV (one event per line, ISO
  /// timestamps). Inverse of ImportCsv.
  std::string ExportCsv() const;

  /// Reconstructs a store from ExportCsv output. The resulting store is
  /// already finalized.
  static Result<TelemetryStore> ImportCsv(const std::string& csv,
                                          std::string region_name,
                                          int utc_offset_minutes,
                                          HolidayCalendar holidays,
                                          Timestamp window_start,
                                          Timestamp window_end);

 private:
  std::string region_name_;
  int utc_offset_minutes_;
  HolidayCalendar holidays_;
  Timestamp window_start_;
  Timestamp window_end_;

  bool finalized_ = false;
  std::vector<Event> events_;
  std::vector<DatabaseRecord> records_;
  std::unordered_map<DatabaseId, size_t> record_index_;
  std::unordered_map<SubscriptionId, std::vector<DatabaseId>> by_subscription_;
};

}  // namespace cloudsurv::telemetry

#endif  // CLOUDSURV_TELEMETRY_STORE_H_
