#ifndef CLOUDSURV_TELEMETRY_STORE_H_
#define CLOUDSURV_TELEMETRY_STORE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "telemetry/civil_time.h"
#include "telemetry/columnar.h"
#include "telemetry/events.h"
#include "telemetry/types.h"

namespace cloudsurv::telemetry {

namespace internal {
struct StoreRep;
}  // namespace internal

/// Lightweight per-database view assembled on demand from the store's
/// record columns. This is the unit the cohort builder, survival study
/// and feature extractor all operate on. Copies are cheap (a few
/// pointers); name fields view the store's string pool and the change /
/// sample spans view its columns, so a record must not outlive the
/// store it came from.
struct DatabaseRecord {
  DatabaseId id = kInvalidId;
  SubscriptionId subscription_id = kInvalidId;
  ServerId server_id = kInvalidId;
  std::string_view server_name;
  std::string_view database_name;
  SubscriptionType subscription_type = SubscriptionType::kPayAsYouGo;
  Timestamp created_at = 0;
  /// Empty while the database is still alive at the end of the
  /// observation window (right-censored).
  std::optional<Timestamp> dropped_at;
  int initial_slo_index = 0;
  columnar::SloChangeSpan slo_changes;       ///< Chronological.
  columnar::SizeSampleSpan size_samples;     ///< Chronological.

  /// Edition the database was created under. Subgroup assignment in the
  /// paper's experiments uses this (creation edition), so groups stay
  /// mutually exclusive even when databases later change edition.
  Edition initial_edition() const;

  /// SLO ladder index in effect at time `ts` (creation SLO before any
  /// change; the latest change at or before `ts` otherwise).
  int SloIndexAt(Timestamp ts) const;

  /// Edition in effect at time `ts`.
  Edition EditionAt(Timestamp ts) const;

  /// True iff any SLO change crossed an edition boundary during the
  /// database's observed lifetime ("changed" vs "always" in Figure 3).
  bool ChangedEditionDuringLifetime() const;

  /// Observed lifespan in fractional days up to `censor_time`:
  /// (min(dropped_at, censor_time) - created_at) / 86400.
  double ObservedLifespanDays(Timestamp censor_time) const;

  /// True iff the database was dropped at or before `ts`.
  bool IsDroppedBy(Timestamp ts) const;
};

/// Lazy sequence of the store's events. Elements are materialized
/// Event values (creation payload strings are copied out of the pool on
/// access). Order is append order before Finalize() and sorted
/// (timestamp, database, kind) order after it — the same contract the
/// struct store's event vector had.
class EventSequence {
 public:
  explicit EventSequence(const internal::StoreRep* rep) : rep_(rep) {}

  size_t size() const;
  bool empty() const { return size() == 0; }
  Event At(size_t i) const;
  Event operator[](size_t i) const { return At(i); }
  Event front() const { return At(0); }

  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Event;
    using difference_type = std::ptrdiff_t;
    using pointer = const Event*;
    using reference = Event;

    Iterator(const internal::StoreRep* rep, size_t i);
    Event operator*() const;
    Iterator& operator++();
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    const internal::StoreRep* rep_;
    size_t i_ = 0;
    size_t seg_ = 0;      ///< current segment (segments.size() = active)
    size_t in_seg_ = 0;   ///< offset within the current segment
  };

  Iterator begin() const { return Iterator(rep_, 0); }
  Iterator end() const { return Iterator(rep_, size()); }

 private:
  const internal::StoreRep* rep_;
};

/// Lazy sequence of the store's database records, ordered by
/// DatabaseId once finalized (creation order while live).
class DatabaseRecordRange {
 public:
  explicit DatabaseRecordRange(const internal::StoreRep* rep) : rep_(rep) {}

  size_t size() const;
  bool empty() const { return size() == 0; }
  DatabaseRecord At(size_t i) const;
  DatabaseRecord operator[](size_t i) const { return At(i); }

  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = DatabaseRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = const DatabaseRecord*;
    using reference = DatabaseRecord;

    Iterator(const DatabaseRecordRange* range, size_t i)
        : range_(range), i_(i) {}
    DatabaseRecord operator*() const { return range_->At(i_); }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    const DatabaseRecordRange* range_;
    size_t i_;
  };

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }

 private:
  const internal::StoreRep* rep_;
};

/// Append-only event log over columnar storage.
///
/// Events append into an active, arena-backed segment whose columns are
/// pre-sized by Reserve(); when an append crosses a time-partition
/// boundary (Options::partition_seconds, aligned to window_start) the
/// active segment seals into an immutable packed Segment. Names are
/// interned in a per-store string pool; per-database state is built
/// incrementally into record columns while appends arrive in
/// (timestamp, database, kind) order, so an ordered store is readable
/// *before* Finalize() (readable()). Out-of-order appends fall back to
/// the classic contract: Finalize() gathers, stable-sorts and replays
/// the log, producing byte-identical state to ordered ingestion.
///
/// Finalize() validates lifecycle invariants (exactly one creation per
/// database, no events outside the create..drop span, drop at most
/// once, consistent subscription id per database), freezes the record
/// columns (CSR change/sample lists, id-sorted iteration order) and
/// drops the live-ingest indexes.
class TelemetryStore {
 public:
  struct Options {
    /// Width of one event segment; boundaries are aligned to
    /// window_start. Must be positive.
    int64_t partition_seconds = 7 * kSecondsPerDay;
  };

  /// Accounted memory footprint, by component. `column_reallocs` counts
  /// active-segment column growths during appends — zero when Reserve()
  /// pre-sized the arena (see docs/telemetry.md).
  struct MemoryStats {
    size_t total_bytes = 0;
    size_t event_bytes = 0;
    size_t record_bytes = 0;
    size_t string_pool_bytes = 0;
    size_t index_bytes = 0;
    size_t num_segments = 0;
    uint64_t column_reallocs = 0;
  };

  /// `region_name` labels outputs; `utc_offset_minutes` converts event
  /// timestamps to region-local civil time for calendar features.
  TelemetryStore(std::string region_name, int utc_offset_minutes,
                 HolidayCalendar holidays, Timestamp window_start,
                 Timestamp window_end);
  TelemetryStore(std::string region_name, int utc_offset_minutes,
                 HolidayCalendar holidays, Timestamp window_start,
                 Timestamp window_end, Options options);

  ~TelemetryStore();
  TelemetryStore(TelemetryStore&&) noexcept;
  TelemetryStore& operator=(TelemetryStore&&) noexcept;
  TelemetryStore(const TelemetryStore&) = delete;
  TelemetryStore& operator=(const TelemetryStore&) = delete;

  /// Appends one event. Only valid before Finalize().
  Status Append(Event event);

  /// Pre-sizes the active segment's columns for `n` further events so a
  /// bulk AppendEvents() does no mid-segment reallocation (capacity is
  /// kept across seals; never shrinks).
  void Reserve(size_t n);

  /// Appends a whole batch. All-or-nothing on *malformed* events (an
  /// invalid id rejects the batch before anything is appended); the
  /// batch vector is consumed. Only valid before Finalize().
  Status AppendEvents(std::vector<Event>&& batch);

  /// Validates and freezes the store. Idempotent errors: a second call
  /// returns FailedPrecondition.
  Status Finalize();

  bool finalized() const;

  /// True when the record accessors (databases(), FindDatabase(),
  /// DatabasesOfSubscription()) reflect every appended event: either
  /// the store is finalized, or every append so far arrived in sorted
  /// order and passed lifecycle validation. Streaming ingestion keeps a
  /// store readable its whole life, so consumers can score against it
  /// without a Finalize() barrier.
  bool readable() const;

  const std::string& region_name() const { return region_name_; }
  int utc_offset_minutes() const { return utc_offset_minutes_; }
  const HolidayCalendar& holidays() const { return holidays_; }
  /// Observation window: databases created in [window_start, window_end);
  /// databases alive at window_end are right-censored.
  Timestamp window_start() const { return window_start_; }
  Timestamp window_end() const { return window_end_; }

  /// All events: append order before Finalize(), sorted order after.
  EventSequence events() const;

  /// All database records, ordered by DatabaseId once finalized
  /// (creation order while live).
  DatabaseRecordRange databases() const;

  /// Record lookup by id; NotFound if the id never appeared.
  Result<DatabaseRecord> FindDatabase(DatabaseId id) const;

  /// Ids of all databases ever created by `sub` within the window,
  /// ordered by creation time. Empty for unknown subscriptions.
  columnar::SubscriptionDatabases DatabasesOfSubscription(
      SubscriptionId sub) const;

  /// All subscription ids seen, sorted.
  std::vector<SubscriptionId> AllSubscriptions() const;

  size_t num_events() const;
  size_t num_databases() const;

  /// Accounted bytes currently held, by component.
  MemoryStats memory() const;
  size_t ApproxMemoryBytes() const { return memory().total_bytes; }

  /// Serializes the event log as CSV (one event per line, ISO
  /// timestamps). Inverse of ImportCsv.
  std::string ExportCsv() const;

  /// Reconstructs a store from ExportCsv output. The resulting store is
  /// already finalized.
  static Result<TelemetryStore> ImportCsv(const std::string& csv,
                                          std::string region_name,
                                          int utc_offset_minutes,
                                          HolidayCalendar holidays,
                                          Timestamp window_start,
                                          Timestamp window_end);

 private:
  Status AppendInternal(const Event& event);

  std::string region_name_;
  int utc_offset_minutes_;
  HolidayCalendar holidays_;
  Timestamp window_start_;
  Timestamp window_end_;
  std::unique_ptr<internal::StoreRep> rep_;
};

}  // namespace cloudsurv::telemetry

#endif  // CLOUDSURV_TELEMETRY_STORE_H_
