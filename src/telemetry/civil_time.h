#ifndef CLOUDSURV_TELEMETRY_CIVIL_TIME_H_
#define CLOUDSURV_TELEMETRY_CIVIL_TIME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cloudsurv::telemetry {

/// Seconds since the Unix epoch (UTC). All telemetry timestamps are UTC;
/// region-local civil time is derived with a fixed per-region UTC offset
/// (sufficient for the creation-time features; DST is deliberately not
/// modeled and is documented as such in DESIGN.md).
using Timestamp = int64_t;

inline constexpr int64_t kSecondsPerMinute = 60;
inline constexpr int64_t kSecondsPerHour = 3600;
inline constexpr int64_t kSecondsPerDay = 86400;

/// Broken-down civil date-time plus derived calendar fields needed by the
/// paper's creation-time features (section 4.2).
struct CivilDateTime {
  int year = 1970;
  int month = 1;        ///< 1-12
  int day = 1;          ///< 1-31
  int hour = 0;         ///< 0-23
  int minute = 0;       ///< 0-59
  int second = 0;       ///< 0-59
  int day_of_week = 4;  ///< 1 = Monday ... 7 = Sunday (1970-01-01 was Thu=4).
  int day_of_year = 1;  ///< 1-366
  int week_of_year = 1; ///< 1-52 (day_of_year bucketed by 7, capped at 52).
};

/// Days since the civil epoch 1970-01-01 for a Gregorian date
/// (proleptic; Howard Hinnant's algorithm).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Builds a UTC timestamp from civil fields.
Timestamp MakeTimestamp(int year, int month, int day, int hour = 0,
                        int minute = 0, int second = 0);

/// Breaks a timestamp (shifted by `utc_offset_minutes`) into local civil
/// fields with derived day-of-week / day-of-year / week-of-year.
CivilDateTime ToCivil(Timestamp ts, int utc_offset_minutes = 0);

/// Number of days in the given month (Gregorian, leap-aware).
int DaysInMonth(int year, int month);

/// True iff `year` is a Gregorian leap year.
bool IsLeapYear(int year);

/// Formats "YYYY-MM-DDTHH:MM:SS" (UTC, no offset suffix).
std::string FormatIso8601(Timestamp ts);

/// Parses "YYYY-MM-DDTHH:MM:SS" (also accepts a date-only form).
Result<Timestamp> ParseIso8601(const std::string& text);

/// A set of region-local public holidays. Creation-time behaviour in the
/// simulator (and one of the paper's observed predictive factors) differs
/// on holidays: human-driven creations drop, automation continues.
class HolidayCalendar {
 public:
  HolidayCalendar() = default;

  /// Registers a holiday by local civil date.
  void AddHoliday(int year, int month, int day);

  /// True iff the local civil date of `ts` (under `utc_offset_minutes`)
  /// is a registered holiday.
  bool IsHoliday(Timestamp ts, int utc_offset_minutes) const;

  /// True iff the given local civil date is a holiday.
  bool IsHolidayDate(int year, int month, int day) const;

  size_t size() const { return days_.size(); }

 private:
  std::vector<int64_t> days_;  // sorted DaysFromCivil values
};

}  // namespace cloudsurv::telemetry

#endif  // CLOUDSURV_TELEMETRY_CIVIL_TIME_H_
