#ifndef CLOUDSURV_TELEMETRY_EVENTS_H_
#define CLOUDSURV_TELEMETRY_EVENTS_H_

#include <string>
#include <variant>

#include "telemetry/civil_time.h"
#include "telemetry/types.h"

namespace cloudsurv::telemetry {

/// Kinds of telemetry events emitted by the (simulated) control plane.
/// The schema mirrors the paper's description of the SQLDB telemetry
/// streams: database lifecycle events, SLO changes and file-size samples.
enum class EventKind : uint8_t {
  kDatabaseCreated = 0,
  kSloChanged = 1,
  kSizeSample = 2,
  kDatabaseDropped = 3,
};

/// Stable display name for an event kind.
const char* EventKindToString(EventKind kind);

/// Payload of a kDatabaseCreated event: everything known at creation.
struct DatabaseCreatedPayload {
  ServerId server_id = kInvalidId;
  std::string server_name;
  std::string database_name;
  int slo_index = 0;  ///< Index into SloLadder() at creation.
  SubscriptionType subscription_type = SubscriptionType::kPayAsYouGo;
};

/// Payload of a kSloChanged event (covers both performance-level and
/// edition changes — an edition change is an SLO change whose old/new
/// ladder entries have different editions).
struct SloChangedPayload {
  int old_slo_index = 0;
  int new_slo_index = 0;
};

/// Payload of a kSizeSample event: the data file size observed by the
/// daily telemetry sampler.
struct SizeSamplePayload {
  double size_mb = 0.0;
};

/// Payload of a kDatabaseDropped event.
struct DatabaseDroppedPayload {};

/// One telemetry event. Events are value types; the store owns them.
struct Event {
  Timestamp timestamp = 0;
  DatabaseId database_id = kInvalidId;
  SubscriptionId subscription_id = kInvalidId;
  std::variant<DatabaseCreatedPayload, SloChangedPayload, SizeSamplePayload,
               DatabaseDroppedPayload>
      payload;

  /// The kind corresponding to the active payload alternative.
  EventKind kind() const {
    return static_cast<EventKind>(payload.index());
  }
};

/// Convenience constructors.
Event MakeCreatedEvent(Timestamp ts, DatabaseId db, SubscriptionId sub,
                       DatabaseCreatedPayload payload);
Event MakeSloChangedEvent(Timestamp ts, DatabaseId db, SubscriptionId sub,
                          int old_slo, int new_slo);
Event MakeSizeSampleEvent(Timestamp ts, DatabaseId db, SubscriptionId sub,
                          double size_mb);
Event MakeDroppedEvent(Timestamp ts, DatabaseId db, SubscriptionId sub);

}  // namespace cloudsurv::telemetry

#endif  // CLOUDSURV_TELEMETRY_EVENTS_H_
