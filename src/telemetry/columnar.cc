#include "telemetry/columnar.h"

#include <algorithm>

#include "obs/metrics.h"

namespace cloudsurv::telemetry::columnar {

const Metrics& GlobalMetrics() {
  static const Metrics* kMetrics = [] {
    auto* m = new Metrics();
    obs::Registry& registry = obs::Registry::Default();
    m->segments_total = registry.GetCounter(
        "cloudsurv_telemetry_segments_total",
        "Event segments sealed across all telemetry stores", "segments");
    m->interned_strings_total = registry.GetCounter(
        "cloudsurv_telemetry_interned_strings_total",
        "Distinct strings interned across all telemetry store pools",
        "strings");
    m->resident_bytes = registry.GetGauge(
        "cloudsurv_telemetry_resident_bytes",
        "Accounted bytes currently held by live telemetry stores",
        "bytes");
    return m;
  }();
  return *kMetrics;
}

namespace {

uint64_t HashBytes(std::string_view s) {
  // FNV-1a, folded once; good enough for name-shaped keys.
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= h >> 32;
  return h;
}

uint64_t HashId(uint64_t key) {
  // SplitMix64 finalizer.
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ULL;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBULL;
  key ^= key >> 31;
  return key;
}

}  // namespace

uint32_t StringPool::Intern(std::string_view s) {
  if (buckets_.empty()) Rehash(256);
  const uint64_t hash = HashBytes(s);
  size_t mask = buckets_.size() - 1;
  size_t b = hash & mask;
  while (buckets_[b] != UINT32_MAX) {
    if (View(buckets_[b]) == s) return buckets_[b];
    b = (b + 1) & mask;
  }
  if (chunks_.empty() || chunk_used_ + s.size() > kChunkBytes) {
    const size_t chunk_size = std::max(kChunkBytes, s.size());
    chunks_.push_back(std::make_unique<char[]>(chunk_size));
    chunk_used_ = 0;
  }
  char* dest = chunks_.back().get() + chunk_used_;
  std::memcpy(dest, s.data(), s.size());
  Span span;
  span.chunk = static_cast<uint32_t>(chunks_.size() - 1);
  span.offset = static_cast<uint32_t>(chunk_used_);
  span.length = static_cast<uint32_t>(s.size());
  chunk_used_ += s.size();
  const uint32_t id = static_cast<uint32_t>(spans_.size());
  spans_.push_back(span);
  buckets_[b] = id;
  GlobalMetrics().interned_strings_total->Increment();
  if (spans_.size() * 10 >= buckets_.size() * 7) Rehash(buckets_.size() * 2);
  return id;
}

void StringPool::Rehash(size_t new_buckets) {
  buckets_.assign(new_buckets, UINT32_MAX);
  const size_t mask = new_buckets - 1;
  for (uint32_t id = 0; id < spans_.size(); ++id) {
    size_t b = HashBytes(View(id)) & mask;
    while (buckets_[b] != UINT32_MAX) b = (b + 1) & mask;
    buckets_[b] = id;
  }
}

size_t StringPool::ApproxBytes() const {
  return chunks_.size() * kChunkBytes + spans_.capacity() * sizeof(Span) +
         buckets_.capacity() * sizeof(uint32_t);
}

void IdMap::Insert(uint64_t key, uint32_t value) {
  if (slots_.empty() || (size_ + 1) * 10 >= slots_.size() * 7) Grow();
  const size_t mask = slots_.size() - 1;
  size_t b = HashId(key) & mask;
  while (slots_[b].key != kInvalidId) {
    if (slots_[b].key == key) {
      slots_[b].value = value;
      return;
    }
    b = (b + 1) & mask;
  }
  slots_[b].key = key;
  slots_[b].value = value;
  ++size_;
}

uint32_t IdMap::Find(uint64_t key) const {
  if (slots_.empty()) return kNotFound;
  const size_t mask = slots_.size() - 1;
  size_t b = HashId(key) & mask;
  while (slots_[b].key != kInvalidId) {
    if (slots_[b].key == key) return slots_[b].value;
    b = (b + 1) & mask;
  }
  return kNotFound;
}

void IdMap::Grow() {
  std::vector<Slot> old = std::move(slots_);
  const size_t new_size = old.empty() ? 1024 : old.size() * 2;
  slots_.assign(new_size, Slot{});
  const size_t mask = new_size - 1;
  for (const Slot& slot : old) {
    if (slot.key == kInvalidId) continue;
    size_t b = HashId(slot.key) & mask;
    while (slots_[b].key != kInvalidId) b = (b + 1) & mask;
    slots_[b] = slot;
  }
}

size_t Segment::ApproxBytes() const {
  size_t bytes = sizeof(Segment);
  bytes += n * (sizeof(uint32_t) /*row*/ + sizeof(uint8_t) /*kind*/ +
                sizeof(uint32_t) /*pix*/);
  bytes += n * (wide_ts ? sizeof(int64_t) : sizeof(uint32_t));
  bytes += n_slo * 2 * sizeof(uint16_t);
  bytes += n_size * sizeof(double);
  return bytes;
}

}  // namespace cloudsurv::telemetry::columnar
